//! Cycle-accurate telemetry: bounded per-tile span/instant recorders,
//! fixed-bucket latency histograms, and a Chrome-trace-event (Perfetto)
//! JSON exporter.
//!
//! The simulator records *where cycles go inside a run* — core stall
//! intervals per [`crate::counters::Counters`] class, DMA descriptor
//! lifetimes (issue → bursts → completion write), per-link NoC occupancy
//! and SDRAM-port service intervals — into bounded ring buffers that are
//! zero-cost when [`TelemetryConfig::enabled`] is off (every recording
//! site is a single branch on a `bool`). Timestamps are virtual time, so
//! two identical runs produce byte-identical telemetry streams.
//!
//! The runtime layer (pmc-runtime) adds annotation-level spans (scope
//! lifetimes, lock acquire/hold, barrier waits, FIFO push/pop, DMA
//! waits) through the existing [`crate::soc::Cpu::trace_event`] channel
//! using the span encoding in [`crate::trace`]; [`MetricsRegistry`]
//! pairs those begin/end records into latency histograms, and
//! [`perfetto_json`] merges both layers into one timeline that opens
//! directly in [ui.perfetto.dev](https://ui.perfetto.dev).

use std::collections::VecDeque;

use crate::config::SocConfig;
use crate::trace::{self, TraceRecord};

/// Telemetry knobs, embedded as [`crate::config::SocConfig::telemetry`].
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Record telemetry events. Off by default: recording sites reduce
    /// to one branch, and no counter, checksum, or trace outcome
    /// changes either way (telemetry charges zero cycles).
    pub enabled: bool,
    /// Ring capacity per recorder (one per tile plus one shared
    /// interconnect recorder). The oldest events are dropped first;
    /// drops are counted in [`TelemetryReport::dropped`].
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: false, ring_capacity: 4096 }
    }
}

impl TelemetryConfig {
    /// An enabled configuration with the default ring capacity.
    pub fn on() -> Self {
        TelemetryConfig { enabled: true, ..Default::default() }
    }
}

/// Stall attribution class of a core stall span — the telemetry mirror
/// of the [`crate::counters::Counters`] stall buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallClass {
    PrivRead,
    SharedRead,
    Write,
    Icache,
    Noc,
    Flush,
    DmaWait,
}

impl StallClass {
    pub fn name(self) -> &'static str {
        match self {
            StallClass::PrivRead => "stall:priv_read",
            StallClass::SharedRead => "stall:shared_read",
            StallClass::Write => "stall:write",
            StallClass::Icache => "stall:icache",
            StallClass::Noc => "stall:noc",
            StallClass::Flush => "stall:flush",
            StallClass::DmaWait => "stall:dma_wait",
        }
    }
}

/// What a telemetry event describes. Spans carry `start < end`;
/// instants have `start == end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A core stall interval, attributed like the cycle counters.
    Stall(StallClass),
    /// A DMA descriptor's lifetime on one engine channel: from issue
    /// (doorbell) to the arrival of its completion write.
    DmaDescriptor { chan: usize, seq: u32 },
    /// One burst of a DMA transfer: engine occupancy from burst start
    /// to the burst's arrival at its destination.
    DmaBurst { len: u32 },
    /// Instant: a DMA completion write landed in the issuing tile's
    /// local memory (sequence number `seq`).
    DmaCompletion { seq: u32 },
    /// A directed NoC link serialising one payload.
    LinkBusy { link: usize },
    /// The SDRAM port servicing one transaction.
    SdramPort,
}

/// One recorded event: a span (`start..end`) or instant
/// (`start == end`) on a tile's timeline, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// The tile the event is attributed to (for link/port events: the
    /// tile that initiated the transaction).
    pub tile: usize,
    pub start: u64,
    pub end: u64,
    pub kind: EventKind,
}

/// A bounded ring-buffer recorder. `Default` is a disabled recorder:
/// every [`Recorder::record`] is then a single branch, so instrumented
/// hot paths cost nothing when telemetry is off.
#[derive(Debug, Default)]
pub struct Recorder {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TelemetryEvent>,
    dropped: u64,
}

impl Recorder {
    pub fn new(cfg: &TelemetryConfig) -> Self {
        Recorder {
            enabled: cfg.enabled,
            capacity: cfg.ring_capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event; drops the oldest event once the ring is full.
    #[inline]
    pub fn record(&mut self, ev: TelemetryEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Record a span `[start, end)` (no-op when disabled).
    #[inline]
    pub fn span(&mut self, tile: usize, start: u64, end: u64, kind: EventKind) {
        if self.enabled {
            self.record(TelemetryEvent { tile, start, end, kind });
        }
    }

    /// Record an instant at `at` (no-op when disabled).
    #[inline]
    pub fn instant(&mut self, tile: usize, at: u64, kind: EventKind) {
        if self.enabled {
            self.record(TelemetryEvent { tile, start: at, end: at, kind });
        }
    }

    /// Take the recorded events and the drop count, leaving the
    /// recorder empty (still enabled).
    pub fn drain(&mut self) -> (Vec<TelemetryEvent>, u64) {
        let evs = std::mem::take(&mut self.events).into();
        (evs, std::mem::take(&mut self.dropped))
    }
}

/// Everything the simulator recorded in one run, assembled by
/// [`crate::soc::Soc::take_telemetry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Core-side events (stall spans), one stream per tile, each in
    /// that tile's local time order.
    pub per_tile: Vec<Vec<TelemetryEvent>>,
    /// Interconnect-side events (DMA descriptor/burst/completion, link
    /// occupancy, SDRAM port), in global virtual-time issue order.
    pub system: Vec<TelemetryEvent>,
    /// Events lost to ring-buffer wraparound across all recorders.
    pub dropped: u64,
}

impl TelemetryReport {
    /// All events of one tile (core stream plus the system events
    /// attributed to it), useful for violation context.
    pub fn events_of_tile(&self, tile: usize) -> Vec<TelemetryEvent> {
        let mut out: Vec<TelemetryEvent> =
            self.per_tile.get(tile).into_iter().flatten().copied().collect();
        out.extend(self.system.iter().filter(|e| e.tile == tile).copied());
        out.sort_by_key(|e| (e.start, e.end));
        out
    }
}

// ---------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------

const HIST_BUCKETS: usize = 33;

/// A fixed-bucket latency histogram with power-of-two bucket bounds:
/// bucket 0 holds the value 0, bucket `i` holds values whose bit length
/// is `i` (range `[2^(i-1), 2^i - 1]`), and the last bucket absorbs
/// everything ≥ 2^31. Percentiles are resolved to the upper bound of
/// the containing bucket (clamped to the observed maximum), so they are
/// deterministic and never underestimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    fn index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket containing the rank-`ceil(p * count)` sample, clamped to
    /// the observed maximum. Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == 0 {
                    return 0;
                }
                if i == HIST_BUCKETS - 1 {
                    // The overflow bucket has no meaningful upper bound.
                    return self.max;
                }
                return ((1u64 << i) - 1).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

// ---------------------------------------------------------------------
// Span pairing and the metrics registry.
// ---------------------------------------------------------------------

/// A runtime-level span reconstructed from a begin/end record pair
/// (see [`crate::trace`] for the encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairedSpan {
    pub tile: usize,
    /// [`crate::trace::span_kind`] constant.
    pub kind: u16,
    /// Producer-defined object/resource id distinguishing concurrent
    /// spans of the same kind on one tile.
    pub addr: u32,
    pub start: u64,
    pub end: u64,
}

/// Pair span begin/end trace records into [`PairedSpan`]s, keyed by
/// `(tile, span kind, addr)`. Returns the pairs in end-time order plus
/// the number of begins left open at the end of the trace. Errors on a
/// span end with no matching begin — the "spans nest correctly" check
/// used by `pmc-trace --smoke`.
pub fn pair_spans(records: &[TraceRecord]) -> Result<(Vec<PairedSpan>, usize), String> {
    use std::collections::HashMap;
    let mut open: HashMap<(usize, u16, u32), Vec<TraceRecord>> = HashMap::new();
    let mut out = Vec::new();
    for r in records {
        if !r.is_span() {
            continue;
        }
        let key = (r.tile, r.span_kind(), r.addr);
        if r.is_span_end() {
            let Some(begin) = open.get_mut(&key).and_then(Vec::pop) else {
                return Err(format!(
                    "span end without begin: t={} tile={} kind={} addr={:#x}",
                    r.time,
                    r.tile,
                    trace::span_kind_name(r.span_kind()),
                    r.addr
                ));
            };
            // Open-loop REQUEST begins carry the *intended* injection
            // time in `value`; honouring it charges frontend queueing
            // delay to the request even though the begin record could
            // only commit once the frontend got around to it.
            let start = if r.span_kind() == trace::span_kind::REQUEST && begin.value != 0 {
                begin.value.min(begin.time)
            } else {
                begin.time
            };
            out.push(PairedSpan {
                tile: r.tile,
                kind: r.span_kind(),
                addr: r.addr,
                start,
                end: r.time,
            });
        } else {
            open.entry(key).or_default().push(*r);
        }
    }
    let dangling = open.values().map(Vec::len).sum();
    Ok((out, dangling))
}

/// Latency histograms over the runtime-level spans of one run,
/// reported beside [`crate::counters::RunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// `dma_wait` / `dma_wait_any` blocked time.
    pub dma_wait: Histogram,
    /// Lock acquisition latency (request → owned).
    pub lock_acquire: Histogram,
    /// Lock hold time (owned → released).
    pub lock_hold: Histogram,
    /// Barrier wait time per participant — the distribution's spread is
    /// the barrier skew.
    pub barrier_wait: Histogram,
    /// Scope hold time (`XScope`/`RoScope` lifetime).
    pub scope_hold: Histogram,
    /// Serving-request latency (intended injection → reply committed;
    /// open-loop: queueing ahead of injection is included via the begin
    /// record's timestamp override).
    pub request: Histogram,
}

impl MetricsRegistry {
    /// Build the registry by pairing the span records of a trace.
    /// Unpaired spans are ignored (a program that ends inside a scope
    /// still yields histograms for everything that closed).
    pub fn from_trace(records: &[TraceRecord]) -> Self {
        let mut m = MetricsRegistry::default();
        let Ok((spans, _open)) = pair_spans(records) else {
            return m;
        };
        for s in &spans {
            let d = s.end - s.start;
            match s.kind {
                trace::span_kind::DMA_WAIT => m.dma_wait.record(d),
                trace::span_kind::LOCK_ACQUIRE => m.lock_acquire.record(d),
                trace::span_kind::LOCK_HOLD => m.lock_hold.record(d),
                trace::span_kind::BARRIER_WAIT => m.barrier_wait.record(d),
                trace::span_kind::SCOPE_X | trace::span_kind::SCOPE_RO => m.scope_hold.record(d),
                trace::span_kind::REQUEST => m.request.record(d),
                _ => {}
            }
        }
        m
    }

    fn rows(&self) -> [(&'static str, &Histogram); 6] {
        [
            ("dma_wait", &self.dma_wait),
            ("lock_acquire", &self.lock_acquire),
            ("lock_hold", &self.lock_hold),
            ("barrier_wait", &self.barrier_wait),
            ("scope_hold", &self.scope_hold),
            ("request", &self.request),
        ]
    }

    /// A fixed-width text table (cycles): count, mean, p50/p90/p99, max.
    pub fn summary(&self) -> String {
        let mut out = String::from(
            "metric          count       mean        p50        p90        p99        max\n",
        );
        for (name, h) in self.rows() {
            out.push_str(&format!(
                "{name:<14} {:>6} {:>10.1} {:>10} {:>10} {:>10} {:>10}\n",
                h.count(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            ));
        }
        out
    }

    /// The same table as a JSON object (one entry per metric).
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        for (name, h) in self.rows() {
            parts.push(format!(
                "\"{name}\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                h.count(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max()
            ));
        }
        format!("{{{}}}", parts.join(","))
    }
}

// ---------------------------------------------------------------------
// Chrome-trace-event (Perfetto) export.
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Thread-track ids inside each tile's Perfetto "process".
const TID_CORE: usize = 0;
const TID_DMA: usize = 1;
const TID_RUNTIME_BASE: usize = 2;

/// Export one run as Chrome-trace-event JSON (the format Perfetto and
/// `chrome://tracing` open directly): one "process" per tile with
/// `core` (stall spans), `dma` (descriptor/burst lifetimes) and
/// per-span-kind runtime tracks, plus an `interconnect` pseudo-process
/// carrying SDRAM-port spans and per-link occupancy counter tracks.
/// Timestamps are virtual cycles reported as microseconds.
pub fn perfetto_json(cfg: &SocConfig, report: &TelemetryReport, records: &[TraceRecord]) -> String {
    let n = cfg.n_tiles;
    let inter_pid = n; // pseudo-process for links + SDRAM port
    let mut ev: Vec<String> = Vec::new();
    let mut meta: Vec<String> = Vec::new();
    let mut named_threads: std::collections::BTreeSet<(usize, usize)> =
        std::collections::BTreeSet::new();

    for pid in 0..n {
        meta.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"tile {pid}\"}}}}"
        ));
    }
    meta.push(format!(
        "{{\"ph\":\"M\",\"pid\":{inter_pid},\"name\":\"process_name\",\
         \"args\":{{\"name\":\"interconnect\"}}}}"
    ));

    let mut thread_name = |pid: usize, tid: usize, name: &str, meta: &mut Vec<String>| {
        if named_threads.insert((pid, tid)) {
            meta.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ));
        }
    };

    let mut push_sim_event = |e: &TelemetryEvent, ev: &mut Vec<String>, meta: &mut Vec<String>| {
        let dur = e.end - e.start;
        match e.kind {
            EventKind::Stall(class) => {
                thread_name(e.tile, TID_CORE, "core", meta);
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{TID_CORE},\"ts\":{},\"dur\":{dur},\
                     \"name\":\"{}\"}}",
                    e.tile,
                    e.start,
                    class.name()
                ));
            }
            EventKind::DmaDescriptor { chan, seq } => {
                thread_name(e.tile, TID_DMA, "dma", meta);
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{TID_DMA},\"ts\":{},\"dur\":{dur},\
                     \"name\":\"dma:descriptor\",\"args\":{{\"chan\":{chan},\"seq\":{seq}}}}}",
                    e.tile, e.start
                ));
            }
            EventKind::DmaBurst { len } => {
                thread_name(e.tile, TID_DMA, "dma", meta);
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{TID_DMA},\"ts\":{},\"dur\":{dur},\
                     \"name\":\"dma:burst\",\"args\":{{\"len\":{len}}}}}",
                    e.tile, e.start
                ));
            }
            EventKind::DmaCompletion { seq } => {
                thread_name(e.tile, TID_DMA, "dma", meta);
                ev.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{},\"tid\":{TID_DMA},\"ts\":{},\"s\":\"t\",\
                     \"name\":\"dma:completion\",\"args\":{{\"seq\":{seq}}}}}",
                    e.tile, e.start
                ));
            }
            EventKind::LinkBusy { link } => {
                let (from, to) = cfg.topology.link_endpoints(n, link);
                let name = format!("link {from}->{to}");
                // A counter track: occupancy rises to 1 at span start
                // and falls back to 0 at span end.
                ev.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{inter_pid},\"ts\":{},\"name\":\"{name}\",\
                     \"args\":{{\"busy\":1}}}}",
                    e.start
                ));
                ev.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{inter_pid},\"ts\":{},\"name\":\"{name}\",\
                     \"args\":{{\"busy\":0}}}}",
                    e.end
                ));
            }
            EventKind::SdramPort => {
                thread_name(inter_pid, TID_CORE, "sdram port", meta);
                ev.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{inter_pid},\"tid\":{TID_CORE},\"ts\":{},\
                     \"dur\":{dur},\"name\":\"sdram:service\",\
                     \"args\":{{\"tile\":{}}}}}",
                    e.start, e.tile
                ));
            }
        }
    };

    for stream in &report.per_tile {
        for e in stream {
            push_sim_event(e, &mut ev, &mut meta);
        }
    }
    for e in &report.system {
        push_sim_event(e, &mut ev, &mut meta);
    }

    // Runtime-level spans: paired begin/end records rendered as
    // complete events, one track per span kind so concurrent scopes on
    // different objects never fight over one track's nesting.
    if let Ok((spans, _open)) = pair_spans(records) {
        for s in &spans {
            let tid = TID_RUNTIME_BASE + s.kind as usize;
            thread_name(s.tile, tid, trace::span_kind_name(s.kind), &mut meta);
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"name\":\"{}\",\"args\":{{\"addr\":{}}}}}",
                s.tile,
                s.start,
                s.end - s.start,
                trace::span_kind_name(s.kind),
                s.addr
            ));
        }
    }

    meta.extend(ev);
    format!("{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{}]}}", meta.join(","))
}

// ---------------------------------------------------------------------
// Minimal JSON syntax validation (no external parser dependency).
// ---------------------------------------------------------------------

/// Check that `s` is one syntactically well-formed JSON value. Used by
/// `pmc-trace --smoke` and the golden trace test to validate exporter
/// output without a JSON parser dependency.
pub fn validate_json(s: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err(&self, msg: &str) -> String {
            format!("{msg} at byte {}", self.i)
        }
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", c as char)))
            }
        }
        fn lit(&mut self, s: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(s.as_bytes()) {
                self.i += s.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected '{s}'")))
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                        self.i += 1;
                        if e == b'u' {
                            for _ in 0..4 {
                                let h = self.peek().ok_or_else(|| self.err("bad \\u"))?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(self.err("bad \\u digit"));
                                }
                                self.i += 1;
                            }
                        } else if !br#""\/bfnrt"#.contains(&e) {
                            return Err(self.err("bad escape char"));
                        }
                    }
                    c if c < 0x20 => return Err(self.err("raw control char in string")),
                    _ => {}
                }
            }
            Err(self.err("unterminated string"))
        }
        fn number(&mut self) -> Result<(), String> {
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            let mut digits = 0;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                digits += 1;
            }
            if digits == 0 {
                return Err(self.err("expected digits"));
            }
            if self.peek() == Some(b'.') {
                self.i += 1;
                let mut frac = 0;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                    frac += 1;
                }
                if frac == 0 {
                    return Err(self.err("expected fraction digits"));
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                let mut exp = 0;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1;
                    exp += 1;
                }
                if exp == 0 {
                    return Err(self.err("expected exponent digits"));
                }
            }
            Ok(())
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.peek() {
                Some(b'{') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b'}') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.ws();
                        self.string()?;
                        self.ws();
                        self.eat(b':')?;
                        self.value()?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b'}') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(self.err("expected ',' or '}'")),
                        }
                    }
                }
                Some(b'[') => {
                    self.i += 1;
                    self.ws();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(());
                    }
                    loop {
                        self.value()?;
                        self.ws();
                        match self.peek() {
                            Some(b',') => self.i += 1,
                            Some(b']') => {
                                self.i += 1;
                                return Ok(());
                            }
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                }
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(_) => self.number(),
                None => Err(self.err("unexpected end of input")),
            }
        }
    }
    let mut p = P { b: s.as_bytes(), i: 0 };
    p.value()?;
    p.ws();
    if p.i != s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{span_begin, span_end, span_kind};

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::default();
        assert!(!r.enabled());
        r.span(0, 1, 5, EventKind::SdramPort);
        r.instant(0, 3, EventKind::DmaCompletion { seq: 1 });
        let (evs, dropped) = r.drain();
        assert!(evs.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = Recorder::new(&TelemetryConfig { enabled: true, ring_capacity: 2 });
        for t in 0..5u64 {
            r.instant(0, t, EventKind::SdramPort);
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 3);
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].start, evs[1].start), (3, 4));
    }

    /// A zero ring capacity is clamped to one slot: the recorder never
    /// panics or silently disables, it keeps the latest event and
    /// accounts every displaced one as dropped.
    #[test]
    fn zero_capacity_ring_keeps_the_latest_event() {
        let mut r = Recorder::new(&TelemetryConfig { enabled: true, ring_capacity: 0 });
        assert!(r.enabled());
        for t in 0..4u64 {
            r.instant(0, t, EventKind::SdramPort);
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 3, "all but the survivor are accounted");
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].start, 3, "the latest event survives");
    }

    /// An empty histogram answers every query with a defined zero —
    /// no division, no underflow, no bogus bucket bound.
    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0, "p={p}");
        }
    }

    /// One sample pins every percentile: the rank clamps to 1 even at
    /// `p = 0.0`, and the bucket upper bound clamps to the observed
    /// maximum, so every quantile is the sample itself.
    #[test]
    fn single_sample_pins_every_percentile() {
        let mut h = Histogram::default();
        h.record(100);
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 100, "p={p}");
        }
        assert_eq!((h.count(), h.max()), (1, 100));
    }

    /// Samples at or beyond 2^31 saturate into the last bucket, which
    /// has no meaningful upper bound: percentiles resolve to the
    /// observed maximum instead.
    #[test]
    fn saturated_last_bucket_reports_the_observed_max() {
        let mut h = Histogram::default();
        for v in [1u64 << 31, (1 << 40) + 5, u64::MAX] {
            h.record(v);
        }
        for p in [0.01, 0.5, 1.0] {
            assert_eq!(h.percentile(p), u64::MAX, "p={p}");
        }
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        // Rank ceil(0.5*6)=3 → value 3 lives in bucket [2,3] → upper 3.
        assert_eq!(h.p50(), 3);
        // p99 → rank 6 → bucket [512,1023] upper 1023, clamped to max.
        assert_eq!(h.p99(), 1000);
        assert_eq!(Histogram::default().p50(), 0);
    }

    #[test]
    fn histogram_handles_zero_and_huge_values() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    fn rec(tile: usize, time: u64, kind: u16, addr: u32) -> TraceRecord {
        TraceRecord { time, tile, kind, addr, len: 0, value: 0 }
    }

    #[test]
    fn pair_spans_matches_begin_end_and_reports_dangling() {
        let t = vec![
            rec(0, 10, span_begin(span_kind::SCOPE_X), 1),
            rec(0, 12, span_begin(span_kind::SCOPE_X), 2),
            rec(0, 20, span_end(span_kind::SCOPE_X), 1),
            rec(1, 30, span_begin(span_kind::BARRIER_WAIT), 7),
        ];
        let (spans, open) = pair_spans(&t).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].start, spans[0].end, spans[0].addr), (10, 20, 1));
        assert_eq!(open, 2);
    }

    #[test]
    fn pair_spans_rejects_end_without_begin() {
        let t = vec![rec(0, 5, span_end(span_kind::LOCK_HOLD), 3)];
        let err = pair_spans(&t).unwrap_err();
        assert!(err.contains("without begin"), "{err}");
    }

    #[test]
    fn metrics_registry_routes_kinds_to_histograms() {
        let t = vec![
            rec(0, 0, span_begin(span_kind::DMA_WAIT), 0),
            rec(0, 64, span_end(span_kind::DMA_WAIT), 0),
            rec(1, 10, span_begin(span_kind::LOCK_ACQUIRE), 4),
            rec(1, 14, span_end(span_kind::LOCK_ACQUIRE), 4),
            rec(1, 14, span_begin(span_kind::LOCK_HOLD), 4),
            rec(1, 50, span_end(span_kind::LOCK_HOLD), 4),
            rec(2, 0, span_begin(span_kind::SCOPE_RO), 9),
            rec(2, 30, span_end(span_kind::SCOPE_RO), 9),
        ];
        let m = MetricsRegistry::from_trace(&t);
        assert_eq!(m.dma_wait.count(), 1);
        assert_eq!(m.lock_acquire.count(), 1);
        assert_eq!(m.lock_hold.count(), 1);
        assert_eq!(m.scope_hold.count(), 1);
        assert_eq!(m.barrier_wait.count(), 0);
        let s = m.summary();
        assert!(s.contains("dma_wait") && s.contains("scope_hold"), "{s}");
        validate_json(&m.to_json()).unwrap();
    }

    #[test]
    fn perfetto_export_is_valid_json_with_all_track_types() {
        let cfg = SocConfig::small(2);
        let report = TelemetryReport {
            per_tile: vec![
                vec![TelemetryEvent {
                    tile: 0,
                    start: 5,
                    end: 9,
                    kind: EventKind::Stall(StallClass::SharedRead),
                }],
                vec![],
            ],
            system: vec![
                TelemetryEvent { tile: 0, start: 2, end: 6, kind: EventKind::LinkBusy { link: 0 } },
                TelemetryEvent { tile: 1, start: 3, end: 8, kind: EventKind::SdramPort },
                TelemetryEvent {
                    tile: 1,
                    start: 1,
                    end: 20,
                    kind: EventKind::DmaDescriptor { chan: 0, seq: 1 },
                },
                TelemetryEvent {
                    tile: 1,
                    start: 20,
                    end: 20,
                    kind: EventKind::DmaCompletion { seq: 1 },
                },
            ],
            dropped: 0,
        };
        let trace = vec![
            rec(0, 10, span_begin(span_kind::SCOPE_X), 1),
            rec(0, 20, span_end(span_kind::SCOPE_X), 1),
        ];
        let json = perfetto_json(&cfg, &report, &trace);
        validate_json(&json).unwrap();
        for needle in [
            "\"tile 0\"",
            "\"interconnect\"",
            "stall:shared_read",
            "link 0->1",
            "sdram:service",
            "dma:descriptor",
            "dma:completion",
            "scope_x",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn validate_json_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e2,true,false,null,\"x\\n\"]}").unwrap();
        validate_json("  [ ]  ").unwrap();
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("[1 2]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{}extra").is_err());
    }

    #[test]
    fn events_of_tile_merges_core_and_system_streams() {
        let report = TelemetryReport {
            per_tile: vec![vec![TelemetryEvent {
                tile: 0,
                start: 9,
                end: 12,
                kind: EventKind::Stall(StallClass::Noc),
            }]],
            system: vec![
                TelemetryEvent { tile: 0, start: 1, end: 4, kind: EventKind::SdramPort },
                TelemetryEvent { tile: 1, start: 2, end: 3, kind: EventKind::SdramPort },
            ],
            dropped: 0,
        };
        let evs = report.events_of_tile(0);
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].start, 1, "sorted by start time");
    }
}
