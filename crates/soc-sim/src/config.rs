//! Simulator configuration: platform shape and timing parameters.
//!
//! Defaults approximate the paper's platform: a 32-core MicroBlaze system
//! on a Xilinx ML605 (in-order cores, small write-back data caches,
//! single-cycle local memories, tens-of-cycles SDRAM, a low-latency
//! connectionless NoC with write-only remote access). Absolute numbers are
//! not calibrated against the FPGA — the reproduction targets the *shape*
//! of the paper's results, and every knob here is sweepable.

use crate::telemetry::TelemetryConfig;

/// Interconnect topology: how tiles are wired and how packets route.
///
/// Links are *directed* and identified by a dense `usize` id so the NoC
/// can keep busy-until / occupancy state per link
/// ([`crate::noc::Noc::reserve_path`], [`crate::noc::Noc::link_stats`]).
/// The numbering is topology-specific:
///
/// * **Ring** (`2 * n_tiles` ids): link `i` carries `i → (i+1) % n`
///   (clockwise), link `n + i` carries `(i+1) % n → i`
///   (counterclockwise). Routes take the shortest arc, clockwise on
///   ties.
/// * **Mesh** (`4 * n_tiles` ids, boundary ids unused): tile
///   `t = y * cols + x` owns up to four outgoing links — east `t → t+1`
///   at id `t`, west `t → t-1` at id `n + t`, south `t → t+cols` at id
///   `2n + t`, north `t → t-cols` at id `3n + t`. Routes are
///   deterministic dimension-ordered **XY**: the full X leg first, then
///   the Y leg — cycle-free and exactly Manhattan-distance long.
/// * **Torus** (`4 * n_tiles` ids): the mesh numbering with wraparound —
///   the east link of a rightmost tile exists and lands on column 0 of
///   the same row (and so on for each direction), so every tile owns
///   all four links unless a dimension is degenerate (`cols == 1` makes
///   east/west self-loops, which are invalid ids; likewise `rows == 1`
///   for south/north). Routes are wrap-aware XY: each leg takes the
///   shorter way around its dimension, east/south on ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Bidirectional ring (the original stand-in for the paper's
    /// connectionless NoC \[16\]).
    #[default]
    Ring,
    /// 2-D mesh of `cols × rows` tiles with XY (dimension-ordered)
    /// routing. `cols * rows` must equal `SocConfig::n_tiles`
    /// ([`SocConfig::validate`]).
    Mesh { cols: usize, rows: usize },
    /// 2-D torus of `cols × rows` tiles: the mesh with wraparound links
    /// in both dimensions and wrap-aware XY routing, halving the worst-
    /// case hop count. `cols * rows` must equal `SocConfig::n_tiles`
    /// ([`SocConfig::validate`]).
    Torus { cols: usize, rows: usize },
}

impl Topology {
    pub fn name(self) -> &'static str {
        match self {
            Topology::Ring => "ring",
            Topology::Mesh { .. } => "mesh",
            Topology::Torus { .. } => "torus",
        }
    }

    /// Number of directed-link id slots (some mesh slots are boundary
    /// ids that no route ever uses; see [`Topology::is_valid_link`]).
    pub fn link_count(self, n_tiles: usize) -> usize {
        match self {
            Topology::Ring => 2 * n_tiles,
            Topology::Mesh { .. } | Topology::Torus { .. } => 4 * n_tiles,
        }
    }

    /// Whether `link` names a physical link of the topology (mesh
    /// boundary slots — e.g. the east link of a rightmost tile — do
    /// not exist).
    pub fn is_valid_link(self, n_tiles: usize, link: usize) -> bool {
        match self {
            Topology::Ring => link < 2 * n_tiles,
            Topology::Mesh { cols, rows } => {
                let n = cols * rows;
                if link >= 4 * n {
                    return false;
                }
                let (dir, t) = (link / n, link % n);
                let (x, y) = (t % cols, t / cols);
                match dir {
                    0 => x + 1 < cols, // east
                    1 => x > 0,        // west
                    2 => y + 1 < rows, // south
                    _ => y > 0,        // north
                }
            }
            Topology::Torus { cols, rows } => {
                let n = cols * rows;
                if link >= 4 * n {
                    return false;
                }
                // Wraparound gives every tile all four links; only a
                // degenerate dimension (a self-loop) is not a link.
                match link / n {
                    0 | 1 => cols > 1, // east / west
                    _ => rows > 1,     // south / north
                }
            }
        }
    }

    /// The `(from, to)` tiles of a directed link (must be valid for the
    /// topology).
    pub fn link_endpoints(self, n_tiles: usize, link: usize) -> (usize, usize) {
        assert!(self.is_valid_link(n_tiles, link), "link {link} is not part of the {self:?}");
        match self {
            Topology::Ring => {
                let n = n_tiles;
                if link < n {
                    (link, (link + 1) % n)
                } else {
                    ((link - n + 1) % n, link - n)
                }
            }
            Topology::Mesh { cols, rows } => {
                let n = cols * rows;
                let (dir, t) = (link / n, link % n);
                match dir {
                    0 => (t, t + 1),
                    1 => (t, t - 1),
                    2 => (t, t + cols),
                    _ => (t, t - cols),
                }
            }
            Topology::Torus { cols, rows } => {
                let n = cols * rows;
                let (dir, t) = (link / n, link % n);
                let (x, y) = (t % cols, t / cols);
                match dir {
                    0 => (t, y * cols + (x + 1) % cols),
                    1 => (t, y * cols + (x + cols - 1) % cols),
                    2 => (t, (y + 1) % rows * cols + x),
                    _ => (t, (y + rows - 1) % rows * cols + x),
                }
            }
        }
    }

    /// Directed link ids along the route `from → to`. Deterministic,
    /// cycle-free, and minimal: the shortest arc on the ring (clockwise
    /// on ties), the XY path (X leg then Y leg) on the mesh, the
    /// wrap-aware XY path (shorter way around each dimension, east/south
    /// on ties) on the torus.
    ///
    /// Endpoint ranges are checked by [`SocConfig::validate`] before a
    /// run starts (every routed endpoint is a tile or a configured
    /// memory controller), so this hot path only `debug_assert!`s them.
    pub fn route(self, n_tiles: usize, from: usize, to: usize) -> Vec<usize> {
        debug_assert!(from < n_tiles && to < n_tiles, "route endpoints out of range");
        if from == to {
            return Vec::new();
        }
        match self {
            Topology::Ring => {
                let n = n_tiles;
                let cw = (to + n - from) % n;
                let ccw = n - cw;
                if cw <= ccw {
                    (0..cw).map(|k| (from + k) % n).collect()
                } else {
                    (0..ccw).map(|k| n + (from + n - 1 - k) % n).collect()
                }
            }
            Topology::Mesh { cols, rows } => {
                let n = cols * rows;
                let (mut x, y0) = (from % cols, from / cols);
                let (tx, ty) = (to % cols, to / cols);
                let mut links = Vec::new();
                while x < tx {
                    links.push(y0 * cols + x); // east of (x, y0)
                    x += 1;
                }
                while x > tx {
                    links.push(n + y0 * cols + x); // west of (x, y0)
                    x -= 1;
                }
                let mut y = y0;
                while y < ty {
                    links.push(2 * n + y * cols + x); // south of (x, y)
                    y += 1;
                }
                while y > ty {
                    links.push(3 * n + y * cols + x); // north of (x, y)
                    y -= 1;
                }
                links
            }
            Topology::Torus { cols, rows } => {
                let n = cols * rows;
                let (mut x, mut y) = (from % cols, from / cols);
                let (tx, ty) = (to % cols, to / cols);
                let mut links = Vec::new();
                // X leg: the shorter way around the row ring, east on
                // ties.
                let east = (tx + cols - x) % cols;
                if east <= cols - east {
                    for _ in 0..east {
                        links.push(y * cols + x); // east of (x, y)
                        x = (x + 1) % cols;
                    }
                } else {
                    for _ in 0..cols - east {
                        links.push(n + y * cols + x); // west of (x, y)
                        x = (x + cols - 1) % cols;
                    }
                }
                // Y leg: the shorter way around the column ring, south
                // on ties.
                let south = (ty + rows - y) % rows;
                if south <= rows - south {
                    for _ in 0..south {
                        links.push(2 * n + y * cols + x); // south of (x, y)
                        y = (y + 1) % rows;
                    }
                } else {
                    for _ in 0..rows - south {
                        links.push(3 * n + y * cols + x); // north of (x, y)
                        y = (y + rows - 1) % rows;
                    }
                }
                links
            }
        }
    }

    /// Hop count of the route `from → to` (shortest arc on the ring,
    /// Manhattan distance on the mesh, wrap-aware Manhattan distance on
    /// the torus).
    pub fn hops(self, n_tiles: usize, from: usize, to: usize) -> u64 {
        match self {
            Topology::Ring => {
                if from == to {
                    return 0;
                }
                let d = from.abs_diff(to);
                d.min(n_tiles - d) as u64
            }
            Topology::Mesh { cols, .. } => {
                let dx = (from % cols).abs_diff(to % cols);
                let dy = (from / cols).abs_diff(to / cols);
                (dx + dy) as u64
            }
            Topology::Torus { cols, rows } => {
                let dx = (from % cols).abs_diff(to % cols);
                let dy = (from / cols).abs_diff(to / cols);
                (dx.min(cols - dx) + dy.min(rows - dy)) as u64
            }
        }
    }
}

/// Execution engine driving the simulated tiles.
///
/// Both engines commit globally visible actions in identical
/// `(virtual_time, tile)` order, so counters, traces, telemetry and
/// outcomes are bit-identical between them — the threaded engine stays
/// alive as a differential cross-check (`tests/engine.rs`, and the
/// `PMC_ENGINE` axis of the conformance sweep).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// One OS thread per simulated core, serialised by a scheduler
    /// mutex + per-tile condvars (the original PDES "turnstile").
    /// Every action pays an O(n_tiles) published-clock scan and a
    /// condvar round trip, which caps realistic configs at a few dozen
    /// tiles.
    Threaded,
    /// Single-threaded discrete-event engine: a min-heap of timestamped
    /// component events drives global time; core programs run as
    /// suspended coroutine tasks resumed one at a time
    /// ([`crate::engine`]). Scales to hundreds of tiles (parked tasks
    /// cost nothing; scheduling is O(log n)).
    #[default]
    DiscreteEvent,
}

impl EngineKind {
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Threaded => "threaded",
            EngineKind::DiscreteEvent => "des",
        }
    }

    /// Parse a CLI/env spelling (`threaded` / `des`; also accepts
    /// `discrete-event` and `event`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "threaded" => Some(EngineKind::Threaded),
            "des" | "discrete-event" | "event" => Some(EngineKind::DiscreteEvent),
            _ => None,
        }
    }
}

/// Data-cache geometry (per core).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_size: u32,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    pub fn size_bytes(&self) -> u32 {
        self.line_size * self.sets * self.ways
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 8 KiB, 2-way, 32-byte lines — MicroBlaze-ish.
        CacheConfig { line_size: 32, sets: 128, ways: 2 }
    }
}

/// Timing parameters, in core clock cycles.
#[derive(Debug, Clone, Copy)]
pub struct Latencies {
    /// Extra stall for a load that hits the data cache (0 = single-cycle).
    pub cache_hit: u64,
    /// Access to the own tile's local memory (LMB-attached BRAM).
    pub local_mem: u64,
    /// Fixed part of an SDRAM transaction (controller + row activation).
    pub sdram_fixed: u64,
    /// Per-32-bit-word transfer cost on the SDRAM bus.
    pub sdram_per_word: u64,
    /// Stall charged for an uncached/posted write (store buffer drain).
    pub posted_write: u64,
    /// Fixed NoC route setup cost.
    pub noc_fixed: u64,
    /// Per-hop NoC cost.
    pub noc_per_hop: u64,
    /// Per-32-bit-word NoC payload cost.
    pub noc_per_word: u64,
    /// I-cache miss penalty.
    pub icache_miss: u64,
    /// Cycles for one cache-management instruction (`wdc`-style).
    pub cache_op: u64,
    /// Per-transfer DMA-engine programming/setup cost (descriptor write
    /// plus channel arbitration) before the first burst can start.
    pub dma_setup: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            cache_hit: 0,
            local_mem: 1,
            sdram_fixed: 14,
            sdram_per_word: 2,
            posted_write: 2,
            noc_fixed: 4,
            noc_per_hop: 2,
            noc_per_word: 1,
            icache_miss: 22,
            cache_op: 2,
            dma_setup: 16,
        }
    }
}

/// Whole-platform configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Number of tiles (cores). The paper's system has 32.
    pub n_tiles: usize,
    /// Per-tile local memory size in bytes.
    pub local_mem_size: u32,
    /// Shared SDRAM size in bytes.
    pub sdram_size: u32,
    pub dcache: CacheConfig,
    pub lat: Latencies,
    /// Average I-cache misses per 1000 instructions (deterministic
    /// Bresenham-style accounting; see `icache` module). The paper's
    /// applications have non-trivial instruction footprints.
    pub icache_mpki: u32,
    /// A core may run at most this many cycles on core-local state before
    /// being forced to synchronise its published clock (bounds how far
    /// other tiles can conservatively lag).
    pub max_local_run: u64,
    /// Hard virtual-time limit; exceeding it aborts the simulation (a
    /// lost-flag / livelock watchdog).
    pub time_limit: u64,
    /// Record an annotation-level event trace (for model validation).
    pub trace: bool,
    /// Cycle-accurate telemetry recording (stall/DMA/link/port spans
    /// and runtime-level span records; see [`crate::telemetry`]).
    /// Disabled by default and strictly observational: toggling it
    /// changes no counter, checksum, or trace outcome.
    pub telemetry: TelemetryConfig,
    /// The tile the SDRAM controller is attached to: DMA bursts and
    /// posted writes traverse the links between the issuing tile and
    /// this tile, so distance (and shared links) shape bulk-transfer
    /// bandwidth. When [`SocConfig::mem_controllers`] is non-empty it
    /// takes precedence and this field is ignored.
    pub mem_tile: usize,
    /// The tiles the SDRAM controllers are attached to. Empty (the
    /// default) means the single controller at [`SocConfig::mem_tile`];
    /// with N > 1 entries the SDRAM address space is striped across the
    /// controllers ([`crate::addr::controller_for`]) and each controller
    /// serialises its own port, so aggregate SDRAM bandwidth scales with
    /// the controller count. Entries must be distinct in-range tiles
    /// ([`SocConfig::validate`]).
    pub mem_controllers: Vec<usize>,
    /// Interconnect topology ([`Topology::Ring`] by default). Everything
    /// that reserves link bandwidth routes through
    /// [`Topology::route`], so the consistency machinery above is
    /// topology-agnostic — the conformance sweep re-proves it per
    /// topology.
    pub topology: Topology,
    /// Independent DMA channels per tile engine. Transfers on one channel
    /// serialise in issue order; transfers on different channels overlap
    /// and contend only for the shared SDRAM port and NoC links.
    /// Completion words and sequence numbers are per-channel.
    pub dma_channels: usize,
    /// Execution engine ([`EngineKind::DiscreteEvent`] by default; both
    /// engines are bit-identical, see [`EngineKind`]).
    pub engine: EngineKind,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            n_tiles: 32,
            local_mem_size: 128 << 10,
            sdram_size: 16 << 20,
            dcache: CacheConfig::default(),
            lat: Latencies::default(),
            icache_mpki: 4,
            max_local_run: 8_192,
            time_limit: 2_000_000_000,
            trace: false,
            telemetry: TelemetryConfig::default(),
            mem_tile: 0,
            mem_controllers: Vec::new(),
            topology: Topology::Ring,
            dma_channels: 1,
            engine: EngineKind::default(),
        }
    }
}

impl SocConfig {
    /// A small configuration for unit tests (fast, 4 tiles).
    pub fn small(n_tiles: usize) -> Self {
        SocConfig {
            n_tiles,
            local_mem_size: 64 << 10,
            sdram_size: 1 << 20,
            time_limit: 200_000_000,
            ..Default::default()
        }
    }

    /// A small mesh configuration for unit tests (`cols × rows` tiles).
    pub fn small_mesh(cols: usize, rows: usize) -> Self {
        SocConfig { topology: Topology::Mesh { cols, rows }, ..Self::small(cols * rows) }
    }

    /// A small torus configuration for unit tests (`cols × rows` tiles).
    pub fn small_torus(cols: usize, rows: usize) -> Self {
        SocConfig { topology: Topology::Torus { cols, rows }, ..Self::small(cols * rows) }
    }

    /// The resolved SDRAM controller placement: `mem_controllers` when
    /// non-empty, else the single controller at `mem_tile`. Index `i` of
    /// the returned list is controller id `i` in the interleaving map
    /// ([`crate::addr::controller_for`]).
    pub fn controllers(&self) -> Vec<usize> {
        if self.mem_controllers.is_empty() {
            vec![self.mem_tile]
        } else {
            self.mem_controllers.clone()
        }
    }

    /// Check the configuration for inconsistencies that would otherwise
    /// surface as index panics or silent deadlocks deep inside a run: a
    /// mesh or torus whose shape has a zero dimension or does not cover
    /// `n_tiles`, a memory controller placed on a tile that does not
    /// exist (or listed twice), a DMA subsystem with no channels, or
    /// scheduler/telemetry parameters the engines cannot honour.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tiles == 0 {
            return Err("n_tiles must be at least 1".to_string());
        }
        if self.mem_tile >= self.n_tiles {
            return Err(format!(
                "mem_tile {} out of range: the platform has {} tiles",
                self.mem_tile, self.n_tiles
            ));
        }
        if let Topology::Mesh { cols, rows } | Topology::Torus { cols, rows } = self.topology {
            let name = self.topology.name();
            if cols == 0 || rows == 0 {
                // Checked before the area: a 0x0 shape on an n_tiles == 0
                // config would otherwise pass `cols * rows == n_tiles`
                // and panic deep inside `route`.
                return Err(format!(
                    "{name} topology {cols}x{rows} has a zero dimension: \
                     cols and rows must both be at least 1"
                ));
            }
            if cols * rows != self.n_tiles {
                return Err(format!(
                    "{name} topology {cols}x{rows} does not cover n_tiles {}: \
                     cols * rows must equal the tile count",
                    self.n_tiles
                ));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &c in &self.mem_controllers {
            if c >= self.n_tiles {
                return Err(format!(
                    "mem_controllers entry {c} out of range: the platform has {} tiles",
                    self.n_tiles
                ));
            }
            if !seen.insert(c) {
                return Err(format!(
                    "mem_controllers lists tile {c} twice: controllers must be distinct tiles"
                ));
            }
        }
        if self.dma_channels == 0 {
            return Err("dma_channels must be at least 1 (every tile has a DMA engine)".to_string());
        }
        if self.time_limit == 0 {
            return Err("time_limit must be non-zero: it is the livelock watchdog, and the \
                 discrete-event engine relies on it to bound runaway tasks"
                .to_string());
        }
        if self.max_local_run == 0 {
            return Err("max_local_run must be at least 1: a zero local-run budget would force a \
                 scheduler sync on every cycle of pure compute"
                .to_string());
        }
        if self.telemetry.enabled && self.telemetry.ring_capacity == 0 {
            return Err("telemetry ring_capacity must be at least 1 when telemetry is enabled \
                 (every event would be dropped at recording time)"
                .to_string());
        }
        if self.telemetry.enabled {
            // One ring per tile plus the interconnect ring: reject
            // configurations whose telemetry footprint cannot be
            // allocated (a 4096-tile mesh with the default capacity is
            // fine; usize overflow of the total is not).
            if self.telemetry.ring_capacity.checked_mul(self.n_tiles + 1).is_none() {
                return Err(format!(
                    "telemetry ring_capacity {} x {} tiles overflows the total ring budget",
                    self.telemetry.ring_capacity, self.n_tiles
                ));
            }
        }
        Ok(())
    }

    /// NoC hop count between two tiles on the configured topology
    /// (nearby tiles are cheaper than far ones).
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        self.topology.hops(self.n_tiles, from, to)
    }

    /// End-to-end NoC latency for a payload of `bytes` bytes.
    pub fn noc_latency(&self, from: usize, to: usize, bytes: u32) -> u64 {
        let words = bytes.div_ceil(4) as u64;
        self.lat.noc_fixed
            + self.lat.noc_per_hop * self.hops(from, to)
            + self.lat.noc_per_word * words
    }

    /// SDRAM service time for a transfer of `bytes` bytes (excluding
    /// queueing, which the scheduler adds).
    pub fn sdram_service(&self, bytes: u32) -> u64 {
        self.lat.sdram_fixed + self.lat.sdram_per_word * bytes.div_ceil(4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size() {
        assert_eq!(CacheConfig::default().size_bytes(), 8 << 10);
    }

    #[test]
    fn ring_hops_are_symmetric_and_shortest() {
        let c = SocConfig::small(8);
        assert_eq!(c.hops(0, 0), 0);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.hops(1, 0), 1);
        assert_eq!(c.hops(0, 7), 1, "ring wraps");
        assert_eq!(c.hops(0, 4), 4);
    }

    #[test]
    fn latencies_monotone_in_distance_and_size() {
        let c = SocConfig::small(8);
        assert!(c.noc_latency(0, 1, 4) < c.noc_latency(0, 4, 4));
        assert!(c.noc_latency(0, 1, 4) < c.noc_latency(0, 1, 64));
        assert!(c.sdram_service(4) < c.sdram_service(32));
    }

    #[test]
    fn ring_route_picks_shortest_direction() {
        let t = Topology::Ring;
        // 8-tile ring: 0 → 2 clockwise over links 0, 1.
        assert_eq!(t.route(8, 0, 2), vec![0, 1]);
        // 0 → 7 counterclockwise over link 8 + 7.
        assert_eq!(t.route(8, 0, 7), vec![15]);
        // 2 → 0 counterclockwise over links 8+1, 8+0.
        assert_eq!(t.route(8, 2, 0), vec![9, 8]);
        assert_eq!(t.route(8, 3, 3), Vec::<usize>::new());
        // Antipodal ties go clockwise.
        assert_eq!(t.route(4, 0, 2), vec![0, 1]);
    }

    #[test]
    fn mesh_xy_route_goes_x_then_y() {
        // 4×4 mesh, tile t = y*4 + x, n = 16.
        let t = Topology::Mesh { cols: 4, rows: 4 };
        // 0 (0,0) → 10 (2,2): east links of tiles 0, 1 then south links
        // of tiles 2, 6.
        assert_eq!(t.route(16, 0, 10), vec![0, 1, 2 * 16 + 2, 2 * 16 + 6]);
        // The reverse path mirrors it: west of 10, 9 then north of 8, 4.
        assert_eq!(t.route(16, 10, 0), vec![16 + 10, 16 + 9, 3 * 16 + 8, 3 * 16 + 4]);
        // Same row: pure X leg.
        assert_eq!(t.route(16, 4, 7), vec![4, 5, 6]);
        // Same column: pure Y leg.
        assert_eq!(t.route(16, 1, 13), vec![2 * 16 + 1, 2 * 16 + 5, 2 * 16 + 9]);
        assert_eq!(t.route(16, 9, 9), Vec::<usize>::new());
    }

    #[test]
    fn mesh_hops_is_manhattan_distance_and_links_chain() {
        let t = Topology::Mesh { cols: 4, rows: 2 };
        assert_eq!(t.hops(8, 0, 7), 4); // (0,0) → (3,1)
        assert_eq!(t.hops(8, 5, 6), 1);
        assert_eq!(t.hops(8, 2, 2), 0);
        let route = t.route(8, 7, 0);
        assert_eq!(route.len() as u64, t.hops(8, 7, 0));
        let mut at = 7;
        for &l in &route {
            assert!(t.is_valid_link(8, l));
            let (from, to) = t.link_endpoints(8, l);
            assert_eq!(from, at);
            at = to;
        }
        assert_eq!(at, 0);
    }

    #[test]
    fn mesh_boundary_link_slots_are_invalid() {
        let t = Topology::Mesh { cols: 3, rows: 2 };
        // Tile 2 = (2, 0): no east (boundary), no north (top row).
        assert!(!t.is_valid_link(6, 2));
        assert!(!t.is_valid_link(6, 3 * 6 + 2));
        // But it has west and south links.
        assert!(t.is_valid_link(6, 6 + 2));
        assert!(t.is_valid_link(6, 2 * 6 + 2));
        // Out-of-range slots are invalid on both topologies.
        assert!(!t.is_valid_link(6, 4 * 6));
        assert!(!Topology::Ring.is_valid_link(6, 12));
    }

    #[test]
    fn torus_route_wraps_the_shorter_way() {
        // 4×4 torus, tile t = y*4 + x, n = 16.
        let t = Topology::Torus { cols: 4, rows: 4 };
        // 0 (0,0) → 3 (3,0): one west hop around the wraparound, not
        // three east hops.
        assert_eq!(t.route(16, 0, 3), vec![16]);
        assert_eq!(t.hops(16, 0, 3), 1);
        // 0 (0,0) → 12 (0,3): one north hop around the wraparound.
        assert_eq!(t.route(16, 0, 12), vec![3 * 16]);
        // 0 → 15 (3,3): wraps both dimensions — west of (0,0), then
        // north of (3,0).
        assert_eq!(t.route(16, 0, 15), vec![16, 3 * 16 + 3]);
        assert_eq!(t.hops(16, 0, 15), 2);
        // Interior routes match the mesh: 0 → 10 goes east, east, south,
        // south (antipodal ties go east/south).
        assert_eq!(t.route(16, 0, 10), vec![0, 1, 2 * 16 + 2, 2 * 16 + 6]);
        assert_eq!(t.route(16, 9, 9), Vec::<usize>::new());
    }

    #[test]
    fn torus_links_wrap_and_degenerate_dims_are_invalid() {
        let t = Topology::Torus { cols: 3, rows: 2 };
        // Tile 2 = (2,0): its east link wraps to (0,0) = tile 0, its
        // north link wraps to (2,1) = tile 5.
        assert!(t.is_valid_link(6, 2));
        assert_eq!(t.link_endpoints(6, 2), (2, 0));
        assert!(t.is_valid_link(6, 3 * 6 + 2));
        assert_eq!(t.link_endpoints(6, 3 * 6 + 2), (2, 5));
        assert!(!t.is_valid_link(6, 4 * 6));
        // A 1-wide torus has no east/west links (self-loops), but keeps
        // south/north.
        let narrow = Topology::Torus { cols: 1, rows: 4 };
        assert!(!narrow.is_valid_link(4, 0));
        assert!(!narrow.is_valid_link(4, 4));
        assert!(narrow.is_valid_link(4, 2 * 4));
        assert_eq!(narrow.route(4, 0, 3), vec![3 * 4]);
    }

    #[test]
    fn validate_rejects_mesh_shape_mismatch() {
        let mut cfg = SocConfig::small(8);
        cfg.topology = Topology::Mesh { cols: 3, rows: 2 };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("3x2") && err.contains("8"), "{err}");
        cfg.topology = Topology::Mesh { cols: 4, rows: 2 };
        assert!(cfg.validate().is_ok());
        cfg.topology = Topology::Mesh { cols: 0, rows: 0 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_mem_tile_out_of_range() {
        let mut cfg = SocConfig::small(4);
        cfg.mem_tile = 4;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("mem_tile 4"), "{err}");
        cfg.mem_tile = 3;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_dim_shapes() {
        // A zero dimension is its own clear error, not an area mismatch
        // (a 0x0 shape would otherwise only be caught by the area check,
        // which an n_tiles == 0 config sails past into `route` panics).
        let mut cfg = SocConfig::small(4);
        cfg.topology = Topology::Mesh { cols: 0, rows: 4 };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("mesh topology 0x4 has a zero dimension"), "{err}");
        cfg.topology = Topology::Torus { cols: 4, rows: 0 };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("torus topology 4x0 has a zero dimension"), "{err}");
    }

    #[test]
    fn validate_rejects_torus_shape_mismatch() {
        let mut cfg = SocConfig::small(8);
        cfg.topology = Topology::Torus { cols: 3, rows: 2 };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("torus topology 3x2") && err.contains('8'), "{err}");
        cfg.topology = Topology::Torus { cols: 4, rows: 2 };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_controller_lists() {
        let mut cfg = SocConfig::small(4);
        cfg.mem_controllers = vec![0, 4];
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("mem_controllers entry 4 out of range"), "{err}");
        cfg.mem_controllers = vec![1, 3, 1];
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("lists tile 1 twice"), "{err}");
        cfg.mem_controllers = vec![1, 3];
        assert!(cfg.validate().is_ok());
        // Empty means the single mem_tile controller.
        cfg.mem_controllers = Vec::new();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.controllers(), vec![cfg.mem_tile]);
    }

    #[test]
    fn validate_rejects_zero_dma_channels() {
        let mut cfg = SocConfig::small(4);
        cfg.dma_channels = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("dma_channels must be at least 1"), "{err}");
        cfg.dma_channels = 1;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_time_limit() {
        let mut cfg = SocConfig::small(4);
        cfg.time_limit = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("time_limit must be non-zero"), "{err}");
    }

    #[test]
    fn validate_rejects_zero_local_run_budget() {
        let mut cfg = SocConfig::small(4);
        cfg.max_local_run = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("max_local_run must be at least 1"), "{err}");
    }

    #[test]
    fn validate_rejects_enabled_telemetry_with_empty_rings() {
        let mut cfg = SocConfig::small(4);
        cfg.telemetry.enabled = true;
        cfg.telemetry.ring_capacity = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("ring_capacity must be at least 1"), "{err}");
        // A disabled recorder does not care about its capacity.
        cfg.telemetry.enabled = false;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_overflowing_telemetry_budget() {
        let mut cfg = SocConfig::small(4);
        cfg.telemetry.enabled = true;
        cfg.telemetry.ring_capacity = usize::MAX / 2;
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("overflows the total ring budget"), "{err}");
    }

    #[test]
    fn engine_kind_parses_cli_spellings() {
        assert_eq!(EngineKind::parse("threaded"), Some(EngineKind::Threaded));
        assert_eq!(EngineKind::parse("des"), Some(EngineKind::DiscreteEvent));
        assert_eq!(EngineKind::parse("discrete-event"), Some(EngineKind::DiscreteEvent));
        assert_eq!(EngineKind::parse("turbo"), None);
        assert_eq!(EngineKind::Threaded.name(), "threaded");
        assert_eq!(EngineKind::DiscreteEvent.name(), "des");
    }

    #[test]
    fn small_mesh_builds_a_valid_config() {
        let cfg = SocConfig::small_mesh(4, 4);
        assert_eq!(cfg.n_tiles, 16);
        assert_eq!(cfg.topology, Topology::Mesh { cols: 4, rows: 4 });
        assert!(cfg.validate().is_ok());
        // hops follows the topology: 0 → 15 is 6 mesh hops, not 1 ring
        // wrap.
        assert_eq!(cfg.hops(0, 15), 6);
    }

    #[test]
    fn small_torus_builds_a_valid_config() {
        let cfg = SocConfig::small_torus(4, 4);
        assert_eq!(cfg.n_tiles, 16);
        assert_eq!(cfg.topology, Topology::Torus { cols: 4, rows: 4 });
        assert!(cfg.validate().is_ok());
        // The wraparound halves the corner-to-corner distance: 2 torus
        // hops where the mesh needs 6.
        assert_eq!(cfg.hops(0, 15), 2);
    }
}
