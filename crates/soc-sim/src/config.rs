//! Simulator configuration: platform shape and timing parameters.
//!
//! Defaults approximate the paper's platform: a 32-core MicroBlaze system
//! on a Xilinx ML605 (in-order cores, small write-back data caches,
//! single-cycle local memories, tens-of-cycles SDRAM, a low-latency
//! connectionless NoC with write-only remote access). Absolute numbers are
//! not calibrated against the FPGA — the reproduction targets the *shape*
//! of the paper's results, and every knob here is sweepable.

/// Data-cache geometry (per core).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Line size in bytes (power of two).
    pub line_size: u32,
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    pub fn size_bytes(&self) -> u32 {
        self.line_size * self.sets * self.ways
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 8 KiB, 2-way, 32-byte lines — MicroBlaze-ish.
        CacheConfig { line_size: 32, sets: 128, ways: 2 }
    }
}

/// Timing parameters, in core clock cycles.
#[derive(Debug, Clone, Copy)]
pub struct Latencies {
    /// Extra stall for a load that hits the data cache (0 = single-cycle).
    pub cache_hit: u64,
    /// Access to the own tile's local memory (LMB-attached BRAM).
    pub local_mem: u64,
    /// Fixed part of an SDRAM transaction (controller + row activation).
    pub sdram_fixed: u64,
    /// Per-32-bit-word transfer cost on the SDRAM bus.
    pub sdram_per_word: u64,
    /// Stall charged for an uncached/posted write (store buffer drain).
    pub posted_write: u64,
    /// Fixed NoC route setup cost.
    pub noc_fixed: u64,
    /// Per-hop NoC cost.
    pub noc_per_hop: u64,
    /// Per-32-bit-word NoC payload cost.
    pub noc_per_word: u64,
    /// I-cache miss penalty.
    pub icache_miss: u64,
    /// Cycles for one cache-management instruction (`wdc`-style).
    pub cache_op: u64,
    /// Per-transfer DMA-engine programming/setup cost (descriptor write
    /// plus channel arbitration) before the first burst can start.
    pub dma_setup: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            cache_hit: 0,
            local_mem: 1,
            sdram_fixed: 14,
            sdram_per_word: 2,
            posted_write: 2,
            noc_fixed: 4,
            noc_per_hop: 2,
            noc_per_word: 1,
            icache_miss: 22,
            cache_op: 2,
            dma_setup: 16,
        }
    }
}

/// Whole-platform configuration.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Number of tiles (cores). The paper's system has 32.
    pub n_tiles: usize,
    /// Per-tile local memory size in bytes.
    pub local_mem_size: u32,
    /// Shared SDRAM size in bytes.
    pub sdram_size: u32,
    pub dcache: CacheConfig,
    pub lat: Latencies,
    /// Average I-cache misses per 1000 instructions (deterministic
    /// Bresenham-style accounting; see `icache` module). The paper's
    /// applications have non-trivial instruction footprints.
    pub icache_mpki: u32,
    /// A core may run at most this many cycles on core-local state before
    /// being forced to synchronise its published clock (bounds how far
    /// other tiles can conservatively lag).
    pub max_local_run: u64,
    /// Hard virtual-time limit; exceeding it aborts the simulation (a
    /// lost-flag / livelock watchdog).
    pub time_limit: u64,
    /// Record an annotation-level event trace (for model validation).
    pub trace: bool,
    /// The ring position the SDRAM controller is attached to: DMA bursts
    /// traverse the links between the issuing tile and this tile, so
    /// distance (and shared links) shape bulk-transfer bandwidth.
    pub mem_tile: usize,
    /// Independent DMA channels per tile engine. Transfers on one channel
    /// serialise in issue order; transfers on different channels overlap
    /// and contend only for the shared SDRAM port and NoC links.
    /// Completion words and sequence numbers are per-channel.
    pub dma_channels: usize,
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig {
            n_tiles: 32,
            local_mem_size: 128 << 10,
            sdram_size: 16 << 20,
            dcache: CacheConfig::default(),
            lat: Latencies::default(),
            icache_mpki: 4,
            max_local_run: 8_192,
            time_limit: 2_000_000_000,
            trace: false,
            mem_tile: 0,
            dma_channels: 1,
        }
    }
}

impl SocConfig {
    /// A small configuration for unit tests (fast, 4 tiles).
    pub fn small(n_tiles: usize) -> Self {
        SocConfig {
            n_tiles,
            local_mem_size: 64 << 10,
            sdram_size: 1 << 20,
            time_limit: 200_000_000,
            ..Default::default()
        }
    }

    /// NoC hop count between two tiles (bidirectional ring, as a stand-in
    /// for the paper's connectionless NoC [16]: nearby tiles are cheaper
    /// than far ones).
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        if from == to {
            return 0;
        }
        let d = from.abs_diff(to);
        d.min(self.n_tiles - d) as u64
    }

    /// End-to-end NoC latency for a payload of `bytes` bytes.
    pub fn noc_latency(&self, from: usize, to: usize, bytes: u32) -> u64 {
        let words = bytes.div_ceil(4) as u64;
        self.lat.noc_fixed
            + self.lat.noc_per_hop * self.hops(from, to)
            + self.lat.noc_per_word * words
    }

    /// SDRAM service time for a transfer of `bytes` bytes (excluding
    /// queueing, which the scheduler adds).
    pub fn sdram_service(&self, bytes: u32) -> u64 {
        self.lat.sdram_fixed + self.lat.sdram_per_word * bytes.div_ceil(4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size() {
        assert_eq!(CacheConfig::default().size_bytes(), 8 << 10);
    }

    #[test]
    fn ring_hops_are_symmetric_and_shortest() {
        let c = SocConfig::small(8);
        assert_eq!(c.hops(0, 0), 0);
        assert_eq!(c.hops(0, 1), 1);
        assert_eq!(c.hops(1, 0), 1);
        assert_eq!(c.hops(0, 7), 1, "ring wraps");
        assert_eq!(c.hops(0, 4), 4);
    }

    #[test]
    fn latencies_monotone_in_distance_and_size() {
        let c = SocConfig::small(8);
        assert!(c.noc_latency(0, 1, 4) < c.noc_latency(0, 4, 4));
        assert!(c.noc_latency(0, 1, 4) < c.noc_latency(0, 1, 64));
        assert!(c.sdram_service(4) < c.sdram_service(32));
    }
}
