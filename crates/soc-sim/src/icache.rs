//! Synthetic instruction-cache model.
//!
//! Application kernels run as Rust closures, so there is no instruction
//! stream to simulate; instead the per-core I-cache charges a
//! deterministic miss budget of `mpki` misses per 1000 instructions with
//! Bresenham-style error accumulation. This reproduces the roughly
//! constant I-cache-stall slice of the paper's Fig. 8 without an ISA
//! simulator (see DESIGN.md, substitution table).

/// Deterministic miss accounting: `misses(n)` over consecutive calls
/// distributes exactly `round(total * mpki / 1000)` misses, independent of
/// call granularity.
#[derive(Debug, Clone, Copy)]
pub struct ICache {
    mpki: u64,
    /// Accumulated "miss debt" in millis (1/1000 instruction units).
    acc: u64,
}

impl ICache {
    pub fn new(mpki: u32) -> Self {
        ICache { mpki: mpki as u64, acc: 0 }
    }

    /// Account `instrs` fetched instructions; returns how many I-cache
    /// misses they incur.
    pub fn fetch(&mut self, instrs: u64) -> u64 {
        self.acc += instrs * self.mpki;
        let misses = self.acc / 1000;
        self.acc %= 1000;
        misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_long_run_rate() {
        let mut ic = ICache::new(4);
        let mut misses = 0;
        for _ in 0..1000 {
            misses += ic.fetch(1000);
        }
        assert_eq!(misses, 4_000);
    }

    #[test]
    fn granularity_independent() {
        let mut a = ICache::new(7);
        let mut b = ICache::new(7);
        let mut ma = 0;
        let mut mb = 0;
        for _ in 0..700 {
            ma += a.fetch(13);
        }
        mb += b.fetch(700 * 13);
        assert_eq!(ma, mb);
    }

    #[test]
    fn zero_rate_never_misses() {
        let mut ic = ICache::new(0);
        assert_eq!(ic.fetch(1_000_000), 0);
    }
}
