//! Property-based tests of the simulator substrates.

use proptest::prelude::*;

use pmc_soc_sim::cache::Cache;
use pmc_soc_sim::{addr, CacheConfig, Cpu, Soc, SocConfig, Topology};
use std::collections::{HashMap, HashSet};

/// Reference model: a flat backing store plus a perfect record of which
/// bytes the cache *should* return.
#[derive(Default)]
struct RefModel {
    backing: HashMap<u32, u8>,
    cached: HashMap<u32, u8>, // line base -> first byte (we track 1 byte/line)
    dirty: HashMap<u32, bool>,
}

fn cache_ops() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    // (op, line_idx, value): op 0 = read, 1 = write, 2 = flush,
    // 3 = invalidate.
    prop::collection::vec((0u8..4, 0u8..12, 0u8..=255), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The write-back cache agrees with a reference model under arbitrary
    /// fill/write/flush/invalidate sequences (tiny cache to force
    /// evictions).
    #[test]
    fn cache_matches_reference(ops in cache_ops()) {
        let cfg = CacheConfig { line_size: 8, sets: 2, ways: 2 };
        let mut cache = Cache::new(cfg);
        let mut model = RefModel::default();
        for &(op, line_idx, value) in &ops {
            let line = line_idx as u32 * 8;
            match op {
                0 => {
                    // Read through the cache, filling on miss.
                    if !cache.contains(line) {
                        let byte = *model.backing.get(&line).unwrap_or(&0);
                        let mut data = [0u8; 8];
                        data[0] = byte;
                        if let Some(wb) = cache.fill(line, &data) {
                            model.backing.insert(wb.offset, wb.data[0]);
                            model.cached.remove(&wb.offset);
                            model.dirty.remove(&wb.offset);
                        }
                        model.cached.insert(line, byte);
                        model.dirty.insert(line, false);
                    }
                    let mut out = [0u8; 1];
                    cache.read_hit(line, &mut out);
                    let expect = model.cached[&line];
                    prop_assert_eq!(out[0], expect, "stale/fresh mismatch at {}", line);
                }
                1 => {
                    if !cache.contains(line) {
                        let byte = *model.backing.get(&line).unwrap_or(&0);
                        let mut data = [0u8; 8];
                        data[0] = byte;
                        if let Some(wb) = cache.fill(line, &data) {
                            model.backing.insert(wb.offset, wb.data[0]);
                            model.cached.remove(&wb.offset);
                            model.dirty.remove(&wb.offset);
                        }
                        model.cached.insert(line, byte);
                    }
                    cache.write_hit(line, &[value]);
                    model.cached.insert(line, value);
                    model.dirty.insert(line, true);
                }
                2 => {
                    let wb = cache.flush_line(line);
                    if model.dirty.remove(&line).unwrap_or(false) {
                        let v = model.cached[&line];
                        model.backing.insert(line, v);
                        prop_assert_eq!(wb.as_ref().map(|w| w.data[0]), Some(v));
                    } else {
                        prop_assert!(wb.is_none());
                    }
                    model.cached.remove(&line);
                }
                _ => {
                    cache.invalidate_line(line);
                    model.cached.remove(&line);
                    model.dirty.remove(&line);
                }
            }
        }
        // Final flush-all must land exactly the dirty reference state in
        // backing.
        for wb in cache.flush_all() {
            model.backing.insert(wb.offset, wb.data[0]);
        }
        for (line, dirty) in model.dirty {
            if dirty {
                prop_assert_eq!(model.backing[&line], model.cached[&line]);
            }
        }
    }

    /// Mesh XY routes are deterministic, cycle-free, exactly Manhattan-
    /// distance long, and made of valid links that chain from source to
    /// destination (the satellite properties of the topology refactor).
    #[test]
    fn mesh_xy_routes_are_minimal_acyclic_and_valid(
        (cols, rows, a, b) in (1u8..6, 1u8..6, 0u16..4096, 0u16..4096)
    ) {
        let (cols, rows) = (cols as usize, rows as usize);
        let n = cols * rows;
        let topo = Topology::Mesh { cols, rows };
        let (from, to) = (a as usize % n, b as usize % n);
        let route = topo.route(n, from, to);
        // Deterministic: routing twice yields the identical link list.
        prop_assert_eq!(&route, &topo.route(n, from, to));
        // Minimal: length equals the Manhattan distance (and `hops`).
        let manhattan = (from % cols).abs_diff(to % cols) + (from / cols).abs_diff(to / cols);
        prop_assert_eq!(route.len(), manhattan);
        prop_assert_eq!(route.len() as u64, topo.hops(n, from, to));
        // Valid and cycle-free: every link exists on the mesh, links
        // chain tile-to-tile from `from` to `to`, no tile is visited
        // twice.
        let mut visited = HashSet::new();
        let mut at = from;
        visited.insert(at);
        for &link in &route {
            prop_assert!(topo.is_valid_link(n, link), "invalid link {}", link);
            prop_assert!(link < topo.link_count(n));
            let (lf, lt) = topo.link_endpoints(n, link);
            prop_assert_eq!(lf, at, "links must chain");
            prop_assert!(visited.insert(lt), "cycle through tile {}", lt);
            at = lt;
        }
        prop_assert_eq!(at, to);
    }

    /// Torus routes are deterministic, cycle-free, made of valid links
    /// that chain from source to destination, and minimal: exactly the
    /// wrap-aware Manhattan distance (the shorter way around each
    /// dimension), never longer than the mesh route on the same grid.
    #[test]
    fn torus_routes_wrap_minimally_and_chain(
        (cols, rows, a, b) in (1u8..6, 1u8..6, 0u16..4096, 0u16..4096)
    ) {
        let (cols, rows) = (cols as usize, rows as usize);
        let n = cols * rows;
        let topo = Topology::Torus { cols, rows };
        let (from, to) = (a as usize % n, b as usize % n);
        let route = topo.route(n, from, to);
        // Deterministic: routing twice yields the identical link list.
        prop_assert_eq!(&route, &topo.route(n, from, to));
        // Minimal: each dimension goes the shorter way around.
        let dx = (from % cols).abs_diff(to % cols);
        let dy = (from / cols).abs_diff(to / cols);
        let wrap_dist = dx.min(cols - dx) + dy.min(rows - dy);
        prop_assert_eq!(route.len(), wrap_dist);
        prop_assert_eq!(route.len() as u64, topo.hops(n, from, to));
        let mesh = Topology::Mesh { cols, rows };
        prop_assert!(topo.hops(n, from, to) <= mesh.hops(n, from, to));
        // Valid and cycle-free: every link exists on the torus, links
        // chain tile-to-tile from `from` to `to`, no tile is visited
        // twice.
        let mut visited = HashSet::new();
        let mut at = from;
        visited.insert(at);
        for &link in &route {
            prop_assert!(topo.is_valid_link(n, link), "invalid link {}", link);
            prop_assert!(link < topo.link_count(n));
            let (lf, lt) = topo.link_endpoints(n, link);
            prop_assert_eq!(lf, at, "links must chain");
            prop_assert!(visited.insert(lt), "cycle through tile {}", lt);
            at = lt;
        }
        prop_assert_eq!(at, to);
    }

    /// Controller interleaving partitions the SDRAM offset space: every
    /// offset maps to exactly one in-range controller, the map is stable
    /// on repeated lookups, offsets within one 4 KiB stripe share an
    /// owner, and with `k` controllers `k` consecutive stripes cover all
    /// `k` owners (round-robin).
    #[test]
    fn interleaving_partitions_the_address_space(
        (offset, k) in (0u32..u32::MAX, 1usize..9)
    ) {
        let c = addr::controller_for(offset, k);
        prop_assert!(c < k, "owner {} out of range for {} controllers", c, k);
        // Pure: the same offset always resolves to the same controller.
        prop_assert_eq!(c, addr::controller_for(offset, k));
        // Stripe-aligned: the stripe base shares the owner.
        let stripe = 1u32 << addr::CTRL_STRIPE_SHIFT;
        prop_assert_eq!(addr::controller_for(offset & !(stripe - 1), k), c);
        // Round-robin: k consecutive stripes hit every controller once
        // (clamped below the top of the offset space so the window
        // doesn't wrap).
        let base = offset.min(u32::MAX - 16 * stripe) & !(stripe - 1);
        let mut owners = HashSet::new();
        for i in 0..k as u32 {
            owners.insert(addr::controller_for(base + i * stripe, k));
        }
        prop_assert_eq!(owners.len(), k, "k consecutive stripes must cover all k controllers");
    }

    /// Ring routes never exceed `n_tiles / 2` links (the shortest arc),
    /// are made of valid link ids, chain from source to destination,
    /// and match `hops`.
    #[test]
    fn ring_routes_take_the_shortest_arc((n, a, b) in (1u8..33, 0u16..4096, 0u16..4096)) {
        let n = n as usize;
        let topo = Topology::Ring;
        let (from, to) = (a as usize % n, b as usize % n);
        let route = topo.route(n, from, to);
        prop_assert!(route.len() <= n / 2, "route of {} links on a {}-ring", route.len(), n);
        prop_assert_eq!(route.len() as u64, topo.hops(n, from, to));
        let mut at = from;
        for &link in &route {
            prop_assert!(topo.is_valid_link(n, link), "invalid link {}", link);
            let (lf, lt) = topo.link_endpoints(n, link);
            prop_assert_eq!(lf, at, "links must chain");
            at = lt;
        }
        prop_assert_eq!(at, to);
    }

    /// Uncached SDRAM is a plain memory regardless of access interleaving
    /// by a single core: last write wins.
    #[test]
    fn uncached_sdram_last_write_wins(writes in prop::collection::vec((0u32..64, 0u32..1000), 1..40)) {
        let soc = Soc::new(SocConfig::small(1));
        let writes_ref = &writes;
        soc.run(vec![Box::new(move |cpu: &mut Cpu| {
            for &(slot, val) in writes_ref {
                cpu.write_u32(addr::SDRAM_UNCACHED_BASE + slot * 4, val);
            }
        })]);
        let mut expect: HashMap<u32, u32> = HashMap::new();
        for &(slot, val) in &writes {
            expect.insert(slot, val);
        }
        for (slot, val) in expect {
            prop_assert_eq!(soc.read_sdram_u32(slot * 4), val);
        }
    }
}

/// Determinism fuzz: random mixed workloads produce bit-identical
/// counters on repeat runs.
#[test]
fn determinism_over_random_workloads() {
    for seed in 0..5u32 {
        let run = |seed: u32| {
            let soc = Soc::new(SocConfig::small(3));
            let r = soc.run(
                (0..3usize)
                    .map(|t| -> pmc_soc_sim::CoreProgram<'static> {
                        Box::new(move |cpu: &mut Cpu| {
                            let mut s = seed as u64 * 77 + t as u64 + 1;
                            for i in 0..400u32 {
                                s ^= s << 13;
                                s ^= s >> 7;
                                s ^= s << 17;
                                match s % 5 {
                                    0 => cpu.write_u32(
                                        addr::SDRAM_UNCACHED_BASE + (s % 512) as u32 * 4,
                                        i,
                                    ),
                                    1 => {
                                        cpu.read_u32(
                                            addr::SDRAM_CACHED_BASE + 4096 + (s % 512) as u32 * 4,
                                        );
                                    }
                                    2 => cpu.write_u32(
                                        addr::SDRAM_CACHED_BASE + 4096 + (s % 512) as u32 * 4,
                                        i,
                                    ),
                                    3 => cpu.compute(1 + (s % 50)),
                                    _ => {
                                        if t != 2 {
                                            cpu.noc_write(
                                                2,
                                                (s % 128) as u32 * 4,
                                                &i.to_le_bytes(),
                                            );
                                        } else {
                                            cpu.compute(5);
                                        }
                                    }
                                }
                            }
                            cpu.flush_dcache_range(addr::SDRAM_CACHED_BASE + 4096, 2048);
                        })
                    })
                    .collect(),
            );
            (r.makespan, format!("{:?}", r.per_core))
        };
        assert_eq!(run(seed), run(seed), "seed {seed} not deterministic");
    }
}
