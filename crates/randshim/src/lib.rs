//! Minimal, dependency-free stand-in for the [`rand`] crate.
//!
//! The CI container cannot reach crates.io, so this workspace vendors the
//! slice of rand's API its workloads use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`RngExt::random_range`] over
//! half-open integer and `f32` ranges. The generator is xorshift64*
//! seeded through splitmix64 — deterministic, which is exactly what the
//! reproducible workload generators need (all call sites pass fixed
//! seeds).
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::Range;

/// Construction from a plain `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Range types [`RngExt::random_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range");
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        // 24 mantissa bits of uniformity is plenty for scene generation.
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing sampling methods (rand 0.9 spelling).
pub trait RngExt: RngCore {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> RngExt for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 step so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}
