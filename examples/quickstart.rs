//! Quickstart: the paper's Fig. 6 message-passing program, annotated with
//! the PMC API and run on every memory architecture of Table II.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;
use std::sync::atomic::{AtomicU32, Ordering};

fn main() {
    println!("PMC quickstart — annotated message passing (paper Fig. 6)\n");
    for backend in BackendKind::ALL {
        let mut sys = System::new(SocConfig::small(2), backend, LockKind::Sdram);
        let x = sys.alloc::<u32>("X");
        let flag = sys.alloc::<u32>("flag");
        sys.init(x, 0);
        sys.init(flag, 0);

        let seen = AtomicU32::new(0);
        let seen_ref = &seen;
        let report = sys.run(vec![
            // Process 1: write the payload, then raise the flag. Each
            // scope guard performs the exit annotation when it drops.
            Box::new(move |ctx| {
                {
                    let xs = ctx.scope_x(x);
                    xs.write(42);
                    ctx.fence();
                }
                let fs = ctx.scope_x(flag);
                fs.write(1);
                fs.flush(); // make the flag visible soon
            }),
            // Process 2: poll the flag (a momentary read-only scope per
            // probe), then read the payload.
            Box::new(move |ctx| {
                while ctx.scope_ro(flag).read() != 1 {
                    ctx.compute(16); // polling back-off
                }
                ctx.fence();
                seen_ref.store(ctx.scope_x(x).read(), Ordering::SeqCst);
            }),
        ]);

        println!(
            "  backend {:<9} -> read X = {:>2}   ({} virtual cycles)",
            backend.name(),
            seen.load(Ordering::SeqCst),
            report.makespan
        );
        assert_eq!(seen.load(Ordering::SeqCst), 42);
    }
    println!("\nThe same annotated source ran unmodified on all four architectures.");
}
