//! Quickstart: the paper's Fig. 6 message-passing program, annotated with
//! the PMC API and run on every memory architecture of Table II.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pmc::runtime::{read_ro, BackendKind, LockKind, System};
use pmc::sim::SocConfig;
use std::sync::atomic::{AtomicU32, Ordering};

fn main() {
    println!("PMC quickstart — annotated message passing (paper Fig. 6)\n");
    for backend in BackendKind::ALL {
        let mut sys = System::new(SocConfig::small(2), backend, LockKind::Sdram);
        let x = sys.alloc::<u32>("X");
        let flag = sys.alloc::<u32>("flag");
        sys.init(x, 0);
        sys.init(flag, 0);

        let seen = AtomicU32::new(0);
        let seen_ref = &seen;
        let report = sys.run(vec![
            // Process 1: write the payload, then raise the flag.
            Box::new(move |ctx| {
                ctx.entry_x(x);
                ctx.write(x, 42);
                ctx.fence();
                ctx.exit_x(x);

                ctx.entry_x(flag);
                ctx.write(flag, 1);
                ctx.flush(flag); // make the flag visible soon
                ctx.exit_x(flag);
            }),
            // Process 2: poll the flag, then read the payload.
            Box::new(move |ctx| {
                while read_ro(ctx, flag) != 1 {
                    ctx.compute(16); // polling back-off
                }
                ctx.fence();
                ctx.entry_x(x);
                seen_ref.store(ctx.read(x), Ordering::SeqCst);
                ctx.exit_x(x);
            }),
        ]);

        println!(
            "  backend {:<9} -> read X = {:>2}   ({} virtual cycles)",
            backend.name(),
            seen.load(Ordering::SeqCst),
            report.makespan
        );
        assert_eq!(seen.load(Ordering::SeqCst), 42);
    }
    println!("\nThe same annotated source ran unmodified on all four architectures.");
}
