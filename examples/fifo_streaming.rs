//! The paper's Fig. 9 case study as a streaming pipeline: a producer
//! pushes frames of work into a multi-reader FIFO; two consumers each
//! receive every element (broadcast), as used by the streaming
//! applications the paper cites [20, 21]. Runs on the DSM architecture,
//! where the FIFO pointers are polled from fast local memory.
//!
//! ```sh
//! cargo run --release --example fifo_streaming
//! ```

use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;
use std::sync::Mutex;

fn main() {
    let items = 48u32;
    println!("MFifo streaming on the DSM back-end: 1 producer, 2 consumers, depth 6\n");
    let mut sys = System::new(SocConfig::small(3), BackendKind::Dsm, LockKind::Sdram);
    let fifo = sys.alloc_fifo::<u32>("stream", 6, 2);

    let received: Mutex<Vec<Vec<u32>>> = Mutex::new(vec![Vec::new(); 2]);
    let received_ref = &received;
    let report = sys.run(vec![
        Box::new(move |ctx| {
            for i in 0..items {
                // "Encode" a frame, then push it.
                ctx.compute(200);
                fifo.push(ctx, 1000 + i);
            }
        }),
        Box::new(move |ctx| {
            for _ in 0..items {
                let v = fifo.pop(ctx, 0);
                ctx.compute(120); // "decode"
                received_ref.lock().unwrap()[0].push(v);
            }
        }),
        Box::new(move |ctx| {
            for _ in 0..items {
                let v = fifo.pop(ctx, 1);
                ctx.compute(300); // slower consumer: back-pressure
                received_ref.lock().unwrap()[1].push(v);
            }
        }),
    ]);

    let received = received.lock().unwrap();
    assert_eq!(received[0], (0..items).map(|i| 1000 + i).collect::<Vec<_>>());
    assert_eq!(received[0], received[1]);
    println!("  {} elements broadcast to both consumers, in order", items);
    println!("  makespan: {} virtual cycles", report.makespan);
    println!(
        "  aggregate stalls: shared-read {}, local/noc {}",
        report.aggregate().stall_shared_read,
        report.aggregate().stall_noc
    );
    println!("\nThe same FIFO code also runs on uncached/SWCC/SPM — see tests/portability.rs.");
}
