//! Renders the RAYTRACE workload's image as ASCII art and prints the
//! Fig. 8-style stall comparison between the no-CC baseline and SWCC.
//!
//! ```sh
//! cargo run --release --example raytrace_demo
//! ```

use pmc::apps::raytrace::{Raytrace, RaytraceParams};
use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;

fn render(backend: BackendKind) -> (u64, f64, String) {
    let params =
        RaytraceParams { width: 64, height: 24, n_spheres: 8, rows_per_task: 2, seed: 0xACE };
    let mut cfg = SocConfig { n_tiles: 4, ..SocConfig::default() };
    cfg.icache_mpki = 3;
    let mut sys = System::new(cfg, backend, LockKind::Sdram);
    let app = Raytrace::build(&mut sys, params);
    let app_ref = &app;
    let report = sys.run(
        (0..4)
            .map(|_| -> pmc::runtime::Program<'_> { Box::new(move |ctx| app_ref.worker(ctx)) })
            .collect(),
    );
    // ASCII rendering from the checksum pass (luminance of the green
    // channel).
    let mut art = String::new();
    let shades = [' ', '.', ':', '=', '+', '*', '#', '@'];
    for task in 0..(params.height / params.rows_per_task) {
        for row in 0..params.rows_per_task {
            for x in 0..params.width {
                let px = app.pixel(&sys, task, row * params.width + x);
                let g = (px >> 8) & 0xff;
                art.push(shades[(g as usize * shades.len() / 256).min(shades.len() - 1)]);
            }
            art.push('\n');
        }
    }
    let agg = report.aggregate();
    (report.makespan, agg.utilization(), art)
}

fn main() {
    let (t_base, u_base, _) = render(BackendKind::Uncached);
    let (t_swcc, u_swcc, art) = render(BackendKind::Swcc);
    println!("{art}");
    println!("no CC : makespan {t_base:>10}, utilization {:.0}%", u_base * 100.0);
    println!("SWCC  : makespan {t_swcc:>10}, utilization {:.0}%", u_swcc * 100.0);
    println!(
        "SWCC runs in {:.0}% of the no-CC time (paper Fig. 8: RAYTRACE improves markedly)",
        t_swcc as f64 / t_base as f64 * 100.0
    );
}
