//! The paper's Fig. 10 case study: full-search motion estimation with
//! scratch-pad staging, compared against software cache coherency.
//!
//! ```sh
//! cargo run --release --example motion_estimation
//! ```

use pmc::apps::motion_est::{MotionEst, MotionEstParams};
use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;

fn main() {
    let params = MotionEstParams { frame: 64, block: 16, range: 8, seed: 7 };
    println!(
        "Motion estimation: {0}x{0} frame, 16x16 blocks, ±{1} search\n",
        params.frame, params.range
    );
    let tiles = 4;
    for backend in [BackendKind::Swcc, BackendKind::Spm] {
        let mut cfg = SocConfig { n_tiles: tiles, ..SocConfig::default() };
        cfg.icache_mpki = 1;
        let mut sys = System::new(cfg, backend, LockKind::Sdram);
        let app = MotionEst::build(&mut sys, params);
        let app_ref = &app;
        let report = sys.run(
            (0..tiles)
                .map(|_| -> pmc::runtime::Program<'_> { Box::new(move |ctx| app_ref.worker(ctx)) })
                .collect(),
        );
        println!(
            "  {:<6} makespan {:>10} cycles, vectors recovered: {:.0}%",
            backend.name(),
            report.makespan,
            app.accuracy(&sys) * 100.0
        );
        for t in [0u32, 5, 10] {
            let v = app.expected(t);
            println!("    block {t:>2}: true motion ({:>2}, {:>2})", v.x, v.y);
        }
    }
    println!("\nScratch-pad staging reads the window at local-memory speed — the paper's");
    println!("\"significant performance increase\" over SWCC for this access pattern.");
}
