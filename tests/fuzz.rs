//! Differential fuzzing of the portability claim: seeded random litmus
//! programs ([`pmc::model::fuzz`]) are enumerated by the PMC model and
//! then executed on every simulated back-end × both lock kinds × all
//! three topologies × both execution engines. Every simulator outcome must
//! fall inside the model's allowed set and every trace must pass
//! [`monitor::validate`] — the same two gates as the hand-written
//! conformance catalogue, but over an unbounded family of programs.
//!
//! Knobs (all optional, defaults give a fast deterministic smoke tier):
//!
//! * `PMC_FUZZ_SEED`  — base seed, decimal or `0x`-hex (default
//!   `0xC0FFEE`). Case `i` uses `base + i`, so a failure report's seed
//!   reproduces the exact program with `PMC_FUZZ_CASES=1`.
//! * `PMC_FUZZ_CASES` — number of generated programs (default 16; the
//!   nightly CI tier runs hundreds with the run id as seed).
//! * `PMC_TOPOLOGY`   — `ring` / `mesh` / `torus` restricts the topology
//!   axis, exactly as in `tests/conformance.rs`.
//! * `PMC_ENGINE`     — `threaded` / `des` restricts the engine axis;
//!   by default every case runs on both engines.
//! * `PMC_MEM_CONTROLLERS` — `<k>` (k ≥ 2) reruns every case with the
//!   SDRAM offset space interleaved over k controllers, exactly as in
//!   `tests/conformance.rs`; unset fuzzes the single-controller default.
//!
//! Each program is enumerated twice — memoized and POR+memoized — and
//! the two outcome sets are asserted equal, so partial-order reduction
//! is re-verified on every random program the fuzzer ever feeds through,
//! not just the fixed catalogue. Programs whose state space exceeds the
//! per-case budget are skipped and counted; the test fails if the
//! generator's cost model lets too many escape.
//!
//! On a divergence the failing program is delta-debugged with
//! [`fuzz::shrink`] (re-running the exact failing back-end/lock/topology
//! configuration as the oracle), rendered, and written to
//! `target/fuzz-divergence-<seed>.txt` — together with a Perfetto
//! timeline of the failing configuration
//! (`target/fuzz-divergence-<seed>.trace.json`) — so CI can upload both
//! as artifacts; the panic message carries the seed and the shrunk
//! program.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pmc::model::conformance::{self, render_outcomes};
use pmc::model::fuzz::{self, GenConfig};
use pmc::model::interleave::{outcomes_with, Limits, Outcome};
use pmc::model::litmus::Program;
use pmc::runtime::monitor::validate;
use pmc::runtime::{BackendKind, LockKind, RunConfig};
use pmc::sim::telemetry::perfetto_json;
use pmc::sim::{EngineKind, Topology};

const LOCK_KINDS: [LockKind; 2] = [LockKind::Sdram, LockKind::Distributed];

/// Per-case enumeration budget. Generated programs are cost-bounded, but
/// floating DMA performs still blow up occasionally; those cases are
/// skipped (and counted) rather than letting one seed stall the suite.
const MAX_STATES: usize = 200_000;

/// Check budget for the shrinker: each check enumerates and re-runs the
/// simulator a few times, so keep it bounded.
const SHRINK_CHECKS: usize = 200;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("{name}={v}: not a u64"))
        }
        Err(_) => default,
    }
}

/// Mesh shape for a litmus run (same policy as `tests/conformance.rs`).
fn mesh_for(threads: usize) -> Topology {
    Topology::Mesh { cols: 2, rows: threads.div_ceil(2).max(2) }
}

/// Torus shape: the mesh grid with wraparound links live.
fn torus_for(threads: usize) -> Topology {
    Topology::Torus { cols: 2, rows: threads.div_ceil(2).max(2) }
}

fn topologies_for(threads: usize) -> Vec<(&'static str, Topology)> {
    let filter = std::env::var("PMC_TOPOLOGY").unwrap_or_default();
    [("ring", Topology::Ring), ("mesh", mesh_for(threads)), ("torus", torus_for(threads))]
        .into_iter()
        .filter(|(name, _)| {
            !matches!(filter.as_str(), "ring" | "mesh" | "torus") || filter == *name
        })
        .collect()
}

/// The memory-controller list for the sweep (`PMC_MEM_CONTROLLERS=<k>`,
/// same policy as `tests/conformance.rs`): tiles `0..k` clamped to the
/// smallest machine the case runs on; unset or `k < 2` keeps the
/// single-controller default.
fn controllers_for(threads: usize) -> Vec<usize> {
    match std::env::var("PMC_MEM_CONTROLLERS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(k) if k >= 2 => (0..k.min(threads.max(1))).collect(),
        _ => Vec::new(),
    }
}

/// The engines to sweep (`PMC_ENGINE` filter, same policy as
/// `tests/conformance.rs`).
fn engines() -> Vec<(&'static str, EngineKind)> {
    let filter = std::env::var("PMC_ENGINE").unwrap_or_default();
    [("threaded", EngineKind::Threaded), ("des", EngineKind::DiscreteEvent)]
        .into_iter()
        .filter(|(name, _)| !matches!(filter.as_str(), "threaded" | "des") || filter == *name)
        .collect()
}

/// One simulator run of a fuzz program on an explicit axis tuple.
fn run_on(
    p: &Program,
    backend: BackendKind,
    lock: LockKind,
    topo: Topology,
    engine: EngineKind,
    telemetry: bool,
) -> pmc::runtime::litmus_exec::LitmusRun {
    RunConfig::new(backend)
        .lock(lock)
        .topology(topo)
        .engine(engine)
        .mem_controllers(controllers_for(p.threads.len().max(1)))
        .telemetry(telemetry)
        .session()
        .litmus(p)
}

/// Model-allowed outcome set of a (raw, un-lowered) fuzz program, or
/// `None` if enumeration exceeds the budget.
fn model_allowed(p: &Program, limits: Limits) -> Option<BTreeSet<Outcome>> {
    outcomes_with(&conformance::lower(p), limits).ok()
}

/// One simulator execution diverges from the model: outcome outside the
/// allowed set, or a dirty trace. This is the shrinking oracle; the
/// simulator is deterministic per configuration, but we re-run a few
/// times anyway so an intermittently-scheduled divergence still
/// reproduces under shrinking.
fn diverges(
    p: &Program,
    backend: BackendKind,
    lock: LockKind,
    topo: Topology,
    engine: EngineKind,
    limits: Limits,
) -> bool {
    let Some(allowed) = model_allowed(p, limits) else {
        return false; // un-enumerable candidates are useless as witnesses
    };
    for _ in 0..4 {
        let run = run_on(p, backend, lock, topo, engine, false);
        if !allowed.contains(&run.outcome) || !validate(&run.trace).is_empty() {
            return true;
        }
    }
    false
}

/// Fuzz one seed end to end. Returns `Ok(true)` if the case ran,
/// `Ok(false)` if it was skipped as too large, `Err(report)` on a
/// divergence (already shrunk and rendered).
fn fuzz_one(seed: u64, cfg: &GenConfig) -> Result<bool, String> {
    let program = fuzz::generate(seed, cfg);
    let memo = Limits { max_states: MAX_STATES, ..Limits::memoized() };
    let reduced = Limits { max_states: MAX_STATES, ..Limits::reduced_memoized() };
    let (Some(plain_set), Some(por_set)) =
        (model_allowed(&program, memo), model_allowed(&program, reduced))
    else {
        return Ok(false);
    };
    // Differential POR check on the random program itself.
    if plain_set != por_set {
        return Err(format!(
            "seed {seed:#x}: POR changed the outcome set!\nprogram:\n{}\nmemoized:\n{}\nPOR+memoized:\n{}",
            fuzz::render_program(&program),
            render_outcomes(&plain_set),
            render_outcomes(&por_set),
        ));
    }
    let allowed = por_set;
    assert!(!allowed.is_empty(), "seed {seed:#x}: empty model outcome set");

    let topologies = topologies_for(program.threads.len());
    let engines = engines();
    for backend in BackendKind::ALL {
        for lock in LOCK_KINDS {
            for &(topo_name, topo) in &topologies {
                for &(engine_name, engine) in &engines {
                    let run = run_on(&program, backend, lock, topo, engine, false);
                    let violations = validate(&run.trace);
                    if allowed.contains(&run.outcome) && violations.is_empty() {
                        continue;
                    }
                    // Divergence: shrink against the exact failing
                    // config, render, persist an artifact, and report the
                    // seed.
                    let shrunk = fuzz::shrink(&program, SHRINK_CHECKS, |cand| {
                        diverges(cand, backend, lock, topo, engine, reduced)
                    });
                    let shrunk_allowed = model_allowed(&shrunk, reduced)
                        .map(|s| render_outcomes(&s))
                        .unwrap_or_else(|| "<enumeration exhausted>".into());
                    let report = format!(
                        "seed {seed:#x} diverges on {}/{lock:?}/{topo_name}/{engine_name}:\n\
                         outcome {:?}, {} monitor violation(s)\n\
                         allowed:\n{}\n\
                         original program:\n{}\n\
                         shrunk program:\n{}\n\
                         shrunk allowed outcomes:\n{}\n\
                         reproduce with: PMC_FUZZ_SEED={seed:#x} PMC_FUZZ_CASES=1 \
                         cargo test --test fuzz",
                        backend.name(),
                        run.outcome,
                        violations.len(),
                        render_outcomes(&allowed),
                        fuzz::render_program(&program),
                        fuzz::render_program(&shrunk),
                        shrunk_allowed,
                    );
                    let path = format!("target/fuzz-divergence-{seed:#x}.txt");
                    let _ = std::fs::write(&path, &report);
                    // Also export a Perfetto timeline of the failing
                    // configuration (telemetry re-run; the simulator is
                    // deterministic per configuration) for the CI
                    // artifact.
                    let telem = run_on(&program, backend, lock, topo, engine, true);
                    let trace_path = format!("target/fuzz-divergence-{seed:#x}.trace.json");
                    let _ = std::fs::write(
                        &trace_path,
                        perfetto_json(&telem.cfg, &telem.telemetry, &telem.trace),
                    );
                    return Err(format!("{report}\n(artifacts: {path}, {trace_path})"));
                }
            }
        }
    }
    Ok(true)
}

/// The fuzz tier: `PMC_FUZZ_CASES` seeded programs, each model-enumerated
/// (memoized and POR+memoized, differentially) and swept over 4 back-ends
/// × 2 lock kinds × the topology axis × the engine axis. Cases are
/// distributed over worker
/// threads; any divergence fails the test with a shrunk, reproducible
/// counterexample.
#[test]
fn seeded_programs_never_escape_the_model() {
    let base_seed = env_u64("PMC_FUZZ_SEED", 0xC0FFEE);
    let cases = env_u64("PMC_FUZZ_CASES", 16) as usize;
    let cfg = GenConfig::default();

    let next = AtomicUsize::new(0);
    let ran = AtomicUsize::new(0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(cases.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cases {
                    return;
                }
                match fuzz_one(base_seed.wrapping_add(i as u64), &cfg) {
                    Ok(true) => {
                        ran.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(report) => errors.lock().unwrap().push(report),
                }
            });
        }
    });

    let errors = errors.into_inner().unwrap();
    assert!(errors.is_empty(), "{} divergence(s):\n\n{}", errors.len(), errors.join("\n\n"));
    let ran = ran.load(Ordering::Relaxed);
    // The generator's cost model should keep the vast majority of seeds
    // enumerable within budget; a collapse here means the budget logic
    // regressed, and the suite would be fuzzing nothing.
    assert!(
        ran * 2 >= cases,
        "only {ran}/{cases} cases fit the enumeration budget — generator cost model regressed?"
    );
}
