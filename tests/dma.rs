//! Workspace-level acceptance tests for the DMA subsystem: the
//! `fig_dma` headline (bursts beat the word-copy loop, per-link
//! contention is reported), portability of the streaming kernels, and
//! the monitor's DMA-protocol rejection — the checks the conformance
//! sweep (`tests/conformance.rs`, which also runs the DMA litmus cases)
//! does not cover.

use pmc::apps::stream::{StreamCopy, StreamCopyParams, StreamMode};
use pmc::runtime::monitor::validate;
use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;

fn run_stream(mode: StreamMode, burst: u32) -> (u64, u64, Vec<u64>) {
    let tiles = 4usize;
    let mut cfg = SocConfig::small(tiles);
    cfg.local_mem_size = 128 << 10;
    let mut sys = System::new(cfg, BackendKind::Spm, LockKind::Sdram);
    sys.set_dma_burst(burst);
    let params = StreamCopyParams { n_tasks: 16, task_bytes: 4096, compute_per_word: 2 };
    let app = StreamCopy::build(&mut sys, params);
    let app_ref = &app;
    let report = sys.run(
        (0..tiles)
            .map(|_| -> pmc::runtime::Program<'_> {
                Box::new(move |ctx| app_ref.worker(ctx, mode))
            })
            .collect(),
    );
    let checksum = app.checksum(&sys);
    let link_busy = sys.soc().link_stats().iter().map(|l| l.busy).collect();
    (checksum, report.makespan, link_busy)
}

/// The fig_dma acceptance: DMA burst streaming beats the word-at-a-time
/// SPM copy at large burst sizes, larger bursts amortise better, and
/// the per-link NoC contention counters report the traffic.
#[test]
fn dma_bursts_beat_word_copy_and_links_report_contention() {
    let (word_sum, word, no_links) = run_stream(StreamMode::WordCopy, 256);
    assert!(no_links.iter().all(|&b| b == 0), "word copy moves nothing over the bulk path");
    let (small_sum, small, _) = run_stream(StreamMode::Dma, 16);
    let (large_sum, large, links) = run_stream(StreamMode::Dma, 1024);
    let (double_sum, double, _) = run_stream(StreamMode::DmaDouble, 1024);
    assert_eq!(word_sum, small_sum);
    assert_eq!(word_sum, large_sum);
    assert_eq!(word_sum, double_sum);
    assert!(large < word, "large bursts must beat the word copy: {large} vs {word}");
    assert!(large < small, "large bursts must beat small ones: {large} vs {small}");
    // Double buffering hides transfer behind compute; under heavy link
    // contention the reordering can cost a fraction of a percent, so
    // allow 2% slack.
    assert!(double * 100 <= large * 102, "double buffering must not lose: {double} vs {large}");
    // Every tile's bursts route to the controller at ring position 0:
    // the links adjacent to it carry traffic.
    assert!(links.iter().any(|&b| b > 0), "link counters must report contention: {links:?}");
    let sum: u64 = links.iter().sum();
    assert!(links[0] > 0 && links[0] * 2 >= links.iter().copied().max().unwrap(), "{links:?}");
    assert!(sum > 0);
}

/// Monitor rejection at the workspace level: a read of DMA-target
/// memory before `dma_wait` is flagged on every back-end and lock kind —
/// the acceptance criterion's rejection test.
#[test]
fn monitor_rejects_read_before_dma_wait_everywhere() {
    for backend in BackendKind::ALL {
        for lock in [LockKind::Sdram, LockKind::Distributed] {
            let mut cfg = SocConfig::small(1);
            cfg.trace = true;
            let mut sys = System::new(cfg, backend, lock);
            let s = sys.alloc_slab::<u32>("s", 32);
            sys.run(vec![Box::new(move |ctx| {
                ctx.entry_ro_stream(s.obj());
                let t = ctx.dma_get(s, 0, 32);
                let _racy: u32 = ctx.read_at(s, 1); // protocol violation
                ctx.dma_wait(t);
                let _fine: u32 = ctx.read_at(s, 1);
                ctx.exit_ro(s.obj());
            })]);
            let v = validate(&sys.soc().take_trace());
            assert!(
                v.iter().any(|v| v.message.contains("before dma_wait")),
                "{backend:?}/{lock:?}: {v:#?}"
            );
            // The racy read breaks two rules (in-flight target + range
            // not yet defined in the streaming scope) — and nothing else
            // in the run is flagged.
            assert_eq!(v.len(), 2, "{backend:?}/{lock:?}: only the racy read: {v:#?}");
            assert_eq!(v[0].time, v[1].time, "{backend:?}/{lock:?}: {v:#?}");
        }
    }
}

/// The streaming kernel is portable: all modes, all back-ends, one
/// result.
#[test]
fn stream_modes_agree_across_backends() {
    let mut sums = Vec::new();
    for backend in BackendKind::ALL {
        for mode in StreamMode::ALL {
            let mut sys = System::new(SocConfig::small(2), backend, LockKind::Sdram);
            let params = StreamCopyParams { n_tasks: 6, task_bytes: 512, compute_per_word: 1 };
            let app = StreamCopy::build(&mut sys, params);
            let app_ref = &app;
            sys.run(
                (0..2)
                    .map(|_| -> pmc::runtime::Program<'_> {
                        Box::new(move |ctx| app_ref.worker(ctx, mode))
                    })
                    .collect(),
            );
            sums.push(app.checksum(&sys));
        }
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "all runs agree: {sums:?}");
}
