//! Workspace-level acceptance tests for the DMA subsystem: the
//! `fig_dma` headlines (bursts beat the word-copy loop, tile-to-tile
//! transfers beat the SDRAM round trip, 2+ channels beat 1 on the
//! double-buffered stream), portability of the streaming kernels, and
//! the monitor's DMA-protocol rejection — the checks the conformance
//! sweep (`tests/conformance.rs`, which also runs the DMA litmus cases)
//! does not cover.

use pmc::apps::stream::{StreamCopy, StreamCopyParams, StreamMode};
use pmc::runtime::monitor::validate;
use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::{CoreProgram, Cpu, DmaDescriptor, DmaDir, DmaKind, Soc, SocConfig, Topology};

fn run_stream(mode: StreamMode, burst: u32, channels: usize, tiles: usize) -> (u64, u64, Vec<u64>) {
    run_stream_compute(mode, burst, channels, tiles, 2)
}

fn run_stream_compute(
    mode: StreamMode,
    burst: u32,
    channels: usize,
    tiles: usize,
    compute_per_word: u64,
) -> (u64, u64, Vec<u64>) {
    let mut cfg = SocConfig::small(tiles.max(2));
    cfg.local_mem_size = 128 << 10;
    let mut sys = System::new(cfg, BackendKind::Spm, LockKind::Sdram);
    sys.set_dma_burst(burst);
    sys.set_dma_channels(channels);
    let params = StreamCopyParams { n_tasks: 16, task_bytes: 4096, compute_per_word };
    let app = StreamCopy::build(&mut sys, params);
    let app_ref = &app;
    let report = sys.run(
        (0..tiles)
            .map(|_| -> pmc::runtime::Program<'_> {
                Box::new(move |ctx| app_ref.worker(ctx, mode))
            })
            .collect(),
    );
    let checksum = app.checksum(&sys);
    let link_busy = sys.soc().link_stats().iter().map(|l| l.busy).collect();
    (checksum, report.makespan, link_busy)
}

/// The fig_dma acceptance: DMA burst streaming beats the word-at-a-time
/// SPM copy at large burst sizes, larger bursts amortise better, and
/// the per-link NoC contention counters report the bulk traffic.
#[test]
fn dma_bursts_beat_word_copy_and_links_report_contention() {
    let (word_sum, word, word_links) = run_stream(StreamMode::WordCopy, 256, 1, 4);
    let (small_sum, small, _) = run_stream(StreamMode::Dma, 16, 1, 4);
    let (large_sum, large, links) = run_stream(StreamMode::Dma, 1024, 1, 4);
    let (double_sum, double, _) = run_stream(StreamMode::DmaDouble, 1024, 1, 4);
    assert_eq!(word_sum, small_sum);
    assert_eq!(word_sum, large_sum);
    assert_eq!(word_sum, double_sum);
    assert!(large < word, "large bursts must beat the word copy: {large} vs {word}");
    assert!(large < small, "large bursts must beat small ones: {large} vs {small}");
    // Double buffering hides transfer behind compute; under heavy link
    // contention the reordering can cost a fraction of a percent, so
    // allow 2% slack.
    assert!(double * 100 <= large * 102, "double buffering must not lose: {double} vs {large}");
    // Every tile's bursts route to the controller at ring position 0:
    // the links adjacent to it carry traffic. The word-copy run's links
    // carry only its posted result writes (the link model accounts CPU
    // stores too since they share the ring), so the DMA run's total link
    // occupancy must dominate it.
    assert!(links.iter().any(|&b| b > 0), "link counters must report contention: {links:?}");
    assert!(links[0] > 0 && links[0] * 2 >= links.iter().copied().max().unwrap(), "{links:?}");
    let word_total: u64 = word_links.iter().sum();
    let dma_total: u64 = links.iter().sum();
    assert!(
        dma_total > 2 * word_total,
        "bulk traffic must dominate the link counters: {dma_total} vs {word_total}"
    );
}

/// Channel scaling: on the double-buffered stream kernel, 2 channels
/// beat 1 at one tile (the second transfer's port/link legs overlap the
/// first channel's in-flight delivery tail instead of queueing behind
/// it), and more channels never lose. With the event-based completion
/// wait the cores sleep to the exact completion cycle — no poll-loop
/// overshoot remains to hide — so already at two tiles the shared SDRAM
/// port saturates and extra channels can only tie, which `fig_dma`'s
/// channel table shows.
#[test]
fn two_channels_beat_one_on_double_buffered_stream() {
    // Transfer-bound configuration (no extra per-word compute): the
    // single channel's serialisation on each transfer's delivery tail is
    // what the second channel hides.
    for tiles in [1usize, 2] {
        let (s1, c1, _) = run_stream_compute(StreamMode::DmaDouble, 4096, 1, tiles, 0);
        let (s2, c2, _) = run_stream_compute(StreamMode::DmaDouble, 4096, 2, tiles, 0);
        let (s4, c4, _) = run_stream_compute(StreamMode::DmaDouble, 4096, 4, tiles, 0);
        assert_eq!(s1, s2);
        assert_eq!(s1, s4);
        if tiles == 1 {
            assert!(c2 < c1, "{tiles} tiles: 2 channels must beat 1: {c2} vs {c1}");
        } else {
            assert!(c2 <= c1, "{tiles} tiles: 2 channels must not lose to 1: {c2} vs {c1}");
        }
        assert!(c4 <= c2, "{tiles} tiles: 4 channels must not lose to 2: {c4} vs {c2}");
    }
}

/// Tile-to-tile transfers sustain higher bandwidth than the equivalent
/// put+get through SDRAM: the copy reserves only the ring links between
/// the two scratchpads — no memory-controller port, no double traversal.
#[test]
fn tile_to_tile_beats_sdram_roundtrip() {
    const BYTES: u32 = 16 << 10;
    let (src, dst) = (2usize, 5usize);
    let init = |soc: &Soc| {
        for i in 0..BYTES / 4 {
            soc.write_local(src, 4096 + i * 4, &(0xD0D0 + i).to_le_bytes());
        }
    };
    let check = |soc: &Soc| {
        let mut out = [0u8; 4];
        soc.read_local(dst, 4096 + (BYTES - 4), &mut out);
        assert_eq!(u32::from_le_bytes(out), 0xD0D0 + BYTES / 4 - 1);
    };

    // Direct tile-to-tile copy.
    let t2t = {
        let soc = Soc::new(SocConfig::small(8));
        init(&soc);
        let mut programs: Vec<CoreProgram<'_>> =
            (0..8).map(|_| -> CoreProgram<'_> { Box::new(|_c: &mut Cpu| {}) }).collect();
        programs[src] = Box::new(move |cpu: &mut Cpu| {
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(
                    DmaKind::Copy { dst_tile: dst },
                    4096,
                    4096,
                    BYTES,
                    1024,
                    0,
                ),
            );
            let base = pmc::sim::addr::local_base(src);
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
        });
        let report = soc.run(programs);
        check(&soc);
        // No SDRAM-port or controller-link involvement at all.
        assert_eq!(soc.link_stats()[0].bursts, 0, "no controller round trip");
        report.makespan
    };

    // The same payload staged out to SDRAM by the producer and fetched
    // back by the consumer (flag handshake in between).
    let via_sdram = {
        let soc = Soc::new(SocConfig::small(8));
        init(&soc);
        let mut programs: Vec<CoreProgram<'_>> =
            (0..8).map(|_| -> CoreProgram<'_> { Box::new(|_c: &mut Cpu| {}) }).collect();
        programs[src] = Box::new(move |cpu: &mut Cpu| {
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(DmaKind::Sdram(DmaDir::Put), 65536, 4096, BYTES, 1024, 0),
            );
            let base = pmc::sim::addr::local_base(src);
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
            cpu.noc_write(dst, 64, &1u32.to_le_bytes()); // data-ready flag
        });
        programs[dst] = Box::new(move |cpu: &mut Cpu| {
            let base = pmc::sim::addr::local_base(dst);
            while cpu.read_u32(base + 64) != 1 {
                cpu.compute(20);
            }
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(DmaKind::Sdram(DmaDir::Get), 65536, 4096, BYTES, 1024, 0),
            );
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
        });
        let report = soc.run(programs);
        check(&soc);
        report.makespan
    };

    assert!(
        t2t * 2 < via_sdram,
        "tile-to-tile must sustain at least 2x the SDRAM round trip's bandwidth: \
         {t2t} vs {via_sdram} cycles for {BYTES} bytes"
    );
}

/// Tile-to-tile copies on a 4×4 mesh: the reserved link set is exactly
/// the XY path between the two scratchpads (nothing else carries a
/// single burst), and the direct copy still beats the same payload
/// staged through SDRAM — the t2t advantage is not a ring artefact.
#[test]
fn mesh_tile_to_tile_reserves_exactly_the_xy_path_and_beats_sdram() {
    const BYTES: u32 = 16 << 10;
    let topo = Topology::Mesh { cols: 4, rows: 4 };
    let (src, dst) = (5usize, 10usize); // (1,1) → (2,2)
    let mk_soc = || Soc::new(SocConfig::small_mesh(4, 4));
    let init = |soc: &Soc| {
        for i in 0..BYTES / 4 {
            soc.write_local(src, 4096 + i * 4, &(0xBEEF + i).to_le_bytes());
        }
    };
    let t2t = {
        let soc = mk_soc();
        init(&soc);
        let mut programs: Vec<CoreProgram<'_>> =
            (0..16).map(|_| -> CoreProgram<'_> { Box::new(|_c: &mut Cpu| {}) }).collect();
        programs[src] = Box::new(move |cpu: &mut Cpu| {
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(
                    DmaKind::Copy { dst_tile: dst },
                    4096,
                    4096,
                    BYTES,
                    1024,
                    0,
                ),
            );
            let base = pmc::sim::addr::local_base(src);
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
        });
        let report = soc.run(programs);
        let mut out = [0u8; 4];
        soc.read_local(dst, 4096 + (BYTES - 4), &mut out);
        assert_eq!(u32::from_le_bytes(out), 0xBEEF + BYTES / 4 - 1);
        // The copy reserved exactly the XY route src → dst: east of
        // (1,1) then south of (2,1) — and every burst of the transfer
        // crossed each of those links exactly once.
        let route = topo.route(16, src, dst);
        assert_eq!(route, vec![5, 2 * 16 + 6]);
        let n_bursts = u64::from(BYTES / 1024);
        for (i, s) in soc.link_stats().iter().enumerate() {
            if route.contains(&i) {
                assert_eq!(s.bursts, n_bursts, "XY-route link {i}");
            } else {
                assert_eq!(s.bursts, 0, "off-route link {i} must stay idle");
            }
        }
        report.makespan
    };
    let via_sdram = {
        let soc = mk_soc();
        init(&soc);
        let mut programs: Vec<CoreProgram<'_>> =
            (0..16).map(|_| -> CoreProgram<'_> { Box::new(|_c: &mut Cpu| {}) }).collect();
        programs[src] = Box::new(move |cpu: &mut Cpu| {
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(DmaKind::Sdram(DmaDir::Put), 65536, 4096, BYTES, 1024, 0),
            );
            let base = pmc::sim::addr::local_base(src);
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
            cpu.noc_write(dst, 64, &1u32.to_le_bytes());
        });
        programs[dst] = Box::new(move |cpu: &mut Cpu| {
            let base = pmc::sim::addr::local_base(dst);
            while cpu.read_u32(base + 64) != 1 {
                cpu.compute(20);
            }
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(DmaKind::Sdram(DmaDir::Get), 65536, 4096, BYTES, 1024, 0),
            );
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
        });
        soc.run(programs).makespan
    };
    assert!(
        t2t * 2 < via_sdram,
        "mesh tile-to-tile must sustain at least 2x the SDRAM round trip: {t2t} vs {via_sdram}"
    );
}

/// Mesh twin of the ring per-link charge pin, at the engine level: a
/// DMA get issued from tile 10 on a 4×4 mesh charges each link of the
/// controller→tile XY route once per burst with the exact serialisation
/// busy time, and nothing else — so a routing change cannot silently
/// shift traffic without failing here.
#[test]
fn mesh_mem_tile_per_link_charges_are_pinned() {
    let soc = Soc::new(SocConfig::small_mesh(4, 4));
    soc.run({
        let mut programs: Vec<CoreProgram<'_>> =
            (0..16).map(|_| -> CoreProgram<'_> { Box::new(|_c: &mut Cpu| {}) }).collect();
        programs[10] = Box::new(|cpu: &mut Cpu| {
            let seq = cpu.dma_issue(
                0,
                DmaDescriptor::contiguous(DmaKind::Sdram(DmaDir::Get), 0, 1024, 256, 64, 0),
            );
            let base = pmc::sim::addr::local_base(10);
            while cpu.read_u32(base) < seq {
                cpu.compute(20);
            }
        });
        programs
    });
    // 256 B in 64 B bursts = 4 bursts over mem_tile (0) → 10: east of
    // (0,0) and (1,0), then south of (2,0) and (2,1): ids 0, 1, 34, 38.
    // Each burst serialises 16 words at noc_per_word = 1.
    let expected = [0usize, 1, 34, 38];
    for (i, s) in soc.link_stats().iter().enumerate() {
        if expected.contains(&i) {
            assert_eq!(s.bursts, 4, "route link {i}");
            assert_eq!(s.busy, 64, "route link {i}");
        } else {
            assert_eq!(s.bursts, 0, "off-route link {i}");
        }
    }
}

/// `dma_copy_local` through the runtime on a mesh: the SPM engine copy
/// round-trips with a clean trace exactly as on the ring (the protocol
/// — tickets, waits, ownership — never sees the topology).
#[test]
fn dma_copy_roundtrips_on_mesh() {
    for backend in [BackendKind::Spm, BackendKind::Uncached] {
        let mut cfg = SocConfig::small_mesh(2, 2);
        cfg.trace = true;
        cfg.dma_channels = 2;
        let mut sys = System::new(cfg, backend, LockKind::Distributed);
        let src = sys.alloc_slab::<u32>("src", 16);
        let dst = sys.alloc_slab::<u32>("dst", 16);
        for i in 0..16 {
            sys.init_at(src, i, 500 + i * 7);
        }
        sys.run(vec![
            Box::new(move |ctx| {
                let s = ctx.scope_ro_stream(src);
                s.dma_get(0, 16).wait();
                let d = ctx.scope_x_stream(dst);
                d.dma_copy_from(&s, 4, 0, 8).wait();
                d.dma_put(0, 8).wait();
                d.close();
                s.close();
            }),
            Box::new(|_ctx| {}),
            Box::new(|_ctx| {}),
            Box::new(|_ctx| {}),
        ]);
        for i in 0..8 {
            assert_eq!(sys.read_back_at(dst, i), 500 + (i + 4) * 7, "{backend:?} elem {i}");
        }
        let v = validate(&sys.soc().take_trace());
        assert!(v.is_empty(), "{backend:?}: {v:#?}");
    }
}

/// Monitor rejection at the workspace level: a read of DMA-target
/// memory before `dma_wait` is flagged on every back-end and lock kind —
/// the acceptance criterion's rejection test.
#[test]
fn monitor_rejects_read_before_dma_wait_everywhere() {
    for backend in BackendKind::ALL {
        for lock in [LockKind::Sdram, LockKind::Distributed] {
            let mut cfg = SocConfig::small(1);
            cfg.trace = true;
            let mut sys = System::new(cfg, backend, lock);
            let s = sys.alloc_slab::<u32>("s", 32);
            sys.run(vec![Box::new(move |ctx| {
                let g = ctx.scope_ro_stream(s);
                let t = g.dma_get(0, 32);
                let _racy: u32 = g.read_at(1); // protocol violation
                t.wait();
                let _fine: u32 = g.read_at(1);
            })]);
            let v = validate(&sys.soc().take_trace());
            assert!(
                v.iter().any(|v| v.message.contains("before dma_wait")),
                "{backend:?}/{lock:?}: {v:#?}"
            );
            // The racy read breaks two rules (in-flight target + range
            // not yet defined in the streaming scope) — and nothing else
            // in the run is flagged.
            assert_eq!(v.len(), 2, "{backend:?}/{lock:?}: only the racy read: {v:#?}");
            assert_eq!(v[0].time, v[1].time, "{backend:?}/{lock:?}: {v:#?}");
        }
    }
}

/// Scatter/gather range tracking: the monitor knows each element of a
/// strided 2-D get — gathered rows become defined, the gaps between
/// them stay undefined, and reading a row while the gather is in flight
/// is flagged.
#[test]
fn monitor_tracks_strided_element_lists() {
    for backend in BackendKind::ALL {
        let mut cfg = SocConfig::small(1);
        cfg.trace = true;
        cfg.dma_channels = 2;
        let mut sys = System::new(cfg, backend, LockKind::Sdram);
        let s = sys.alloc_slab::<u32>("grid", 64); // 8 x 8
        sys.run(vec![Box::new(move |ctx| {
            let g = ctx.scope_ro_stream(s);
            // Gather a 4-wide, 3-row tile starting at element 8 (row 1),
            // stride 8 (one grid row).
            let t = g.dma_get_2d(8, 4, 3, 8);
            let _racy: u32 = g.read_at(16); // row 2: in flight
            t.wait();
            let _ok0: u32 = g.read_at(8); // row 1: gathered
            let _ok1: u32 = g.read_at(24); // row 3: gathered
            let _gap: u32 = g.read_at(12); // row 1 gap: never defined
            let _below: u32 = g.read_at(0); // row 0: never defined
        })]);
        let v = validate(&sys.soc().take_trace());
        let racy = v.iter().filter(|v| v.message.contains("before dma_wait")).count();
        let undefined = v.iter().filter(|v| v.message.contains("never defined")).count();
        assert_eq!(racy, 1, "{backend:?}: {v:#?}");
        // The racy read also counts as undefined (not yet covered).
        assert_eq!(undefined, 3, "{backend:?}: {v:#?}");
        assert_eq!(v.len(), 4, "{backend:?}: {v:#?}");
    }
}

/// Strided 2-D puts publish exactly their element lists: a streaming
/// writer fills a 2-D tile of a grid and publishes it with one
/// `dma_put_2d`; the home holds the tile, the gaps stay untouched, and
/// the trace is clean on every back-end.
#[test]
fn dma_put_2d_publishes_exactly_its_rows() {
    for backend in BackendKind::ALL {
        let mut cfg = SocConfig::small(1);
        cfg.trace = true;
        cfg.dma_channels = 2;
        let mut sys = System::new(cfg, backend, LockKind::Sdram);
        let s = sys.alloc_slab::<u32>("grid", 64); // 8 x 8
        for i in 0..64 {
            sys.init_at(s, i, 1000 + i);
        }
        sys.run(vec![Box::new(move |ctx| {
            let g = ctx.scope_x_stream(s);
            // Write a 4-wide, 3-row tile at element 8 (row 1), stride 8.
            for r in 0..3 {
                for c in 0..4 {
                    g.write_at(8 + r * 8 + c, 7000 + r * 10 + c);
                }
            }
            g.dma_put_2d(8, 4, 3, 8).wait();
        })]);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(
                    sys.read_back_at(s, 8 + r * 8 + c),
                    7000 + r * 10 + c,
                    "{backend:?}: tile element"
                );
            }
        }
        for i in [0u32, 7, 12, 15, 20, 32, 63] {
            assert_eq!(sys.read_back_at(s, i), 1000 + i, "{backend:?}: gap element {i}");
        }
        let v = validate(&sys.soc().take_trace());
        assert!(v.is_empty(), "{backend:?}: {v:#?}");
    }
}

/// Local-to-local copies round-trip on every back-end × lock kind, with
/// clean traces: source staged by a get, copied into an exclusively held
/// destination, published, and read back.
#[test]
fn dma_copy_roundtrips_on_all_backends() {
    for backend in BackendKind::ALL {
        for lock in [LockKind::Sdram, LockKind::Distributed] {
            let mut cfg = SocConfig::small(2);
            cfg.trace = true;
            cfg.dma_channels = 2;
            let mut sys = System::new(cfg, backend, lock);
            let src = sys.alloc_slab::<u32>("src", 16);
            let dst = sys.alloc_slab::<u32>("dst", 16);
            for i in 0..16 {
                sys.init_at(src, i, 100 + i * 3);
            }
            sys.run(vec![
                Box::new(move |ctx| {
                    let s = ctx.scope_ro_stream(src);
                    s.dma_get(0, 16).wait();
                    let d = ctx.scope_x_stream(dst);
                    d.dma_copy_from(&s, 4, 0, 8).wait();
                    d.dma_put(0, 8).wait();
                    d.close();
                    s.close();
                }),
                Box::new(|_ctx| {}),
            ]);
            for i in 0..8 {
                assert_eq!(
                    sys.read_back_at(dst, i),
                    100 + (i + 4) * 3,
                    "{backend:?}/{lock:?} elem {i}"
                );
            }
            let v = validate(&sys.soc().take_trace());
            assert!(v.is_empty(), "{backend:?}/{lock:?}: {v:#?}");
        }
    }
}

/// Copy-protocol rejection: reading the copy destination before the
/// wait is flagged on every back-end (the engine writes it lazily), and
/// the eager-exclusive destination path needs no explicit put.
#[test]
fn monitor_rejects_read_of_copy_destination_before_wait() {
    for backend in BackendKind::ALL {
        let mut cfg = SocConfig::small(1);
        cfg.trace = true;
        let mut sys = System::new(cfg, backend, LockKind::Sdram);
        let src = sys.alloc::<u32>("src");
        let dst = sys.alloc::<u32>("dst");
        sys.init(src, 7);
        sys.run(vec![Box::new(move |ctx| {
            let gs = ctx.scope_x(src);
            gs.write(9);
            let gd = ctx.scope_x(dst);
            let t = gd.copy_obj_from(&gs);
            let _racy = gd.read(); // before the wait!
            t.wait();
            let fresh = gd.read(); // defined now
            assert_eq!(fresh, 9, "{backend:?}");
            gd.close();
            gs.close();
        })]);
        let v = validate(&sys.soc().take_trace());
        assert!(
            v.iter().any(|v| v.message.contains("before dma_wait")),
            "{backend:?}: racy destination read must be flagged: {v:#?}"
        );
        assert_eq!(v.len(), 1, "{backend:?}: only the racy read: {v:#?}");
    }
}

/// The streaming kernel is portable: all modes, all back-ends, one
/// result.
#[test]
fn stream_modes_agree_across_backends() {
    let mut sums = Vec::new();
    for backend in BackendKind::ALL {
        for mode in StreamMode::ALL {
            let mut sys = System::new(SocConfig::small(2), backend, LockKind::Sdram);
            let params = StreamCopyParams { n_tasks: 6, task_bytes: 512, compute_per_word: 1 };
            let app = StreamCopy::build(&mut sys, params);
            let app_ref = &app;
            sys.run(
                (0..2)
                    .map(|_| -> pmc::runtime::Program<'_> {
                        Box::new(move |ctx| app_ref.worker(ctx, mode))
                    })
                    .collect(),
            );
            sums.push(app.checksum(&sys));
        }
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "all runs agree: {sums:?}");
}
