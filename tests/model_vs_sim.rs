//! Mapping soundness: runs on the simulated architectures, validated
//! against the PMC model.
//!
//! Two layers:
//! 1. the *runtime monitor* replays annotation-level traces and checks
//!    mutual exclusion, freshness-under-lock and slow-read monotonicity
//!    (Definitions 11–12) — here exercised on every back-end;
//! 2. the *model enumerator* provides the set of allowed outcomes for
//!    litmus programs; simulator outcomes must fall inside it.

use pmc::model::interleave::outcomes;
use pmc::model::litmus::catalogue;
use pmc::runtime::monitor::validate;
use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};

fn traced(n: usize) -> SocConfig {
    let mut cfg = SocConfig::small(n);
    cfg.trace = true;
    cfg
}

/// Annotated MP run on each back-end: the observed outcome must be inside
/// the model's outcome set for the annotated program (which is {42}).
#[test]
fn sim_outcomes_within_model_outcomes() {
    let model_outs = outcomes(&catalogue::mp_annotated()).unwrap();
    let allowed: BTreeSet<u32> = model_outs.iter().map(|o| o[1][0]).collect();
    assert_eq!(allowed, BTreeSet::from([42]));
    for backend in BackendKind::ALL {
        let mut sys = System::new(traced(2), backend, LockKind::Sdram);
        let x = sys.alloc::<u32>("X");
        let f = sys.alloc::<u32>("flag");
        let seen = AtomicU32::new(u32::MAX);
        let seen_ref = &seen;
        sys.run(vec![
            Box::new(move |ctx| {
                {
                    let xs = ctx.scope_x(x);
                    xs.write(42);
                    ctx.fence();
                }
                let fs = ctx.scope_x(f);
                fs.write(1);
                fs.flush();
            }),
            Box::new(move |ctx| {
                while ctx.scope_ro(f).read() != 1 {
                    ctx.compute(12);
                }
                ctx.fence();
                seen_ref.store(ctx.scope_x(x).read(), Ordering::SeqCst);
            }),
        ]);
        let got = seen.load(Ordering::SeqCst);
        assert!(allowed.contains(&got), "{backend:?}: outcome {got} outside the model set");
        let violations = validate(&sys.soc().take_trace());
        assert!(violations.is_empty(), "{backend:?}: {violations:#?}");
    }
}

/// Multi-object churn traces stay clean on every back-end and both lock
/// kinds (the runtime-vs-model contract under contention).
#[test]
fn churn_traces_validate() {
    for backend in BackendKind::ALL {
        for lock in [LockKind::Sdram, LockKind::Distributed] {
            let n = 3usize;
            let mut sys = System::new(traced(n), backend, lock);
            let objs = sys.alloc_vec::<u32>("o", 5);
            sys.run(
                (0..n)
                    .map(|t| -> pmc::runtime::Program<'_> {
                        Box::new(move |ctx| {
                            for i in 0..10u32 {
                                let o = objs.at((t as u32 * 2 + i) % objs.len());
                                {
                                    let s = ctx.scope_x(o);
                                    let v = s.read();
                                    s.write(v + 1);
                                }
                                // Unlocked polling reads interleave.
                                let _ = ctx.scope_ro(objs.at(i % objs.len())).read();
                                ctx.compute(25);
                            }
                        })
                    })
                    .collect(),
            );
            let violations = validate(&sys.soc().take_trace());
            assert!(violations.is_empty(), "{backend:?}/{lock:?}: {violations:#?}");
            let total: u32 = (0..5).map(|i| sys.read_back(objs.at(i))).sum();
            assert_eq!(total, 30, "{backend:?}/{lock:?}");
        }
    }
}

/// The model forbids reading (new, old) on one location (CoRR); the
/// simulated back-ends must too. A writer bumps a counter; readers
/// sample it twice and must never see it go backwards.
#[test]
fn no_backend_violates_read_monotonicity() {
    for backend in BackendKind::ALL {
        let mut sys = System::new(SocConfig::small(3), backend, LockKind::Sdram);
        let x = sys.alloc::<u32>("x");
        sys.run(vec![
            Box::new(move |ctx| {
                for v in 1..=30u32 {
                    let xs = ctx.scope_x(x);
                    xs.write(v);
                    xs.flush();
                    xs.close();
                    ctx.compute(40);
                }
            }),
            Box::new(move |ctx| {
                let mut prev = 0;
                for _ in 0..60 {
                    let v = ctx.scope_ro(x).read();
                    assert!(v >= prev, "{backend:?}: read went backwards {prev} -> {v}");
                    prev = v;
                    ctx.compute(15);
                }
            }),
            Box::new(move |ctx| {
                let mut prev = 0;
                for _ in 0..60 {
                    let v = ctx.scope_ro(x).read();
                    assert!(v >= prev, "{backend:?}: read went backwards {prev} -> {v}");
                    prev = v;
                    ctx.compute(23);
                }
            }),
        ]);
        assert_eq!(sys.read_back(x), 30);
    }
}
