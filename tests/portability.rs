//! E5 — the paper's Table II portability claim, end to end: the same
//! annotated programs run unmodified on all four memory architectures and
//! produce consistent results.

use pmc::apps::workload::{run_workload, Workload, WorkloadParams};
use pmc::runtime::{BackendKind, LockKind, System};
use pmc::sim::SocConfig;

#[test]
fn every_workload_runs_on_every_backend() {
    for w in [Workload::Raytrace, Workload::Volrend, Workload::MotionEst] {
        let mut sums = Vec::new();
        for backend in BackendKind::ALL {
            let r = run_workload(w, backend, 4, WorkloadParams::Tiny);
            sums.push(r.checksum);
        }
        assert!(
            sums.iter().all(|&s| s == sums[0]),
            "{w:?}: outputs differ across back-ends: {sums:?}"
        );
    }
}

#[test]
fn radiosity_conserves_energy_on_every_backend() {
    let mut sums = Vec::new();
    for backend in BackendKind::ALL {
        let r = run_workload(Workload::Radiosity, backend, 4, WorkloadParams::Tiny);
        sums.push(r.checksum);
    }
    // f32 accumulation order differs; totals must agree closely.
    let e = sums[0];
    assert!(
        sums.iter().all(|s| (s - e).abs() < 1e-3 * e.abs().max(1.0)),
        "energy totals diverge: {sums:?}"
    );
}

/// The distributed lock is a drop-in replacement for the SDRAM lock.
#[test]
fn fifo_works_with_distributed_locks() {
    for backend in [BackendKind::Swcc, BackendKind::Dsm] {
        let mut sys = System::new(SocConfig::small(3), backend, LockKind::Distributed);
        let fifo = sys.alloc_fifo::<u32>("f", 4, 2);
        let items = 25u32;
        sys.run(vec![
            Box::new(move |ctx| {
                for i in 0..items {
                    fifo.push(ctx, i + 1);
                }
            }),
            Box::new(move |ctx| {
                let mut prev = 0;
                for _ in 0..items {
                    let v = fifo.pop(ctx, 0);
                    assert!(v > prev);
                    prev = v;
                }
            }),
            Box::new(move |ctx| {
                let mut prev = 0;
                for _ in 0..items {
                    let v = fifo.pop(ctx, 1);
                    assert!(v > prev);
                    prev = v;
                }
            }),
        ]);
    }
}

/// Fig. 6 (annotated message passing) across back-ends *and* lock kinds.
#[test]
fn annotated_mp_reads_42_everywhere() {
    for backend in BackendKind::ALL {
        for lock in [LockKind::Sdram, LockKind::Distributed] {
            let mut sys = System::new(SocConfig::small(2), backend, lock);
            let x = sys.alloc::<u32>("X");
            let f = sys.alloc::<u32>("flag");
            let seen = std::sync::atomic::AtomicU32::new(0);
            let seen_ref = &seen;
            sys.run(vec![
                Box::new(move |ctx| {
                    {
                        let xs = ctx.scope_x(x);
                        xs.write(42);
                        ctx.fence();
                    }
                    let fs = ctx.scope_x(f);
                    fs.write(1);
                    fs.flush();
                }),
                Box::new(move |ctx| {
                    while ctx.scope_ro(f).read() != 1 {
                        ctx.compute(16);
                    }
                    ctx.fence();
                    seen_ref.store(ctx.scope_x(x).read(), std::sync::atomic::Ordering::SeqCst);
                }),
            ]);
            assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 42, "{backend:?}/{lock:?}");
        }
    }
}
