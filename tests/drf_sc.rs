//! E9 — the paper's Section IV-E claims, checked mechanically:
//!
//! * fully fenced + lock-protected PMC programs behave like Processor
//!   Consistency, and (being data-race free) simulate Sequential
//!   Consistency;
//! * without fences between critical sections on *different* locations,
//!   PMC is weaker than Entry Consistency: an SC-forbidden outcome is
//!   allowed (and the fences restore SC);
//! * plain PMC reads/writes are Slow Consistency.

use pmc::model::interleave::{outcomes, outcomes_with, Limits};
use pmc::model::litmus::{catalogue, Instr, Program, Reg};
use pmc::model::models::trace::MemEvent;
use pmc::model::models::{check_pc, check_sc, check_slow};
use pmc::model::op::LocId;

/// Build the value traces corresponding to one enumerated outcome of the
/// two-thread, one-read-per-thread cross-lock program, then model-check.
fn cross_lock_traces(r0: u32, r1: u32) -> Vec<Vec<MemEvent>> {
    let x = LocId(0);
    let y = LocId(1);
    vec![
        vec![MemEvent::write(x, 1), MemEvent::read(y, r0)],
        vec![MemEvent::write(y, 1), MemEvent::read(x, r1)],
    ]
}

#[test]
fn fenced_cross_locks_are_sc() {
    let outs = outcomes(&catalogue::drf_fenced_cross_locks()).unwrap();
    for o in &outs {
        let traces = cross_lock_traces(o[0][0], o[1][0]);
        assert!(check_sc(&traces), "fenced DRF program produced a non-SC behaviour: {o:?}");
    }
}

#[test]
fn unfenced_cross_locks_escape_sc_but_not_slow() {
    let outs = outcomes(&catalogue::drf_no_fence_cross_locks()).unwrap();
    let mut saw_non_sc = false;
    for o in &outs {
        let traces = cross_lock_traces(o[0][0], o[1][0]);
        assert!(check_slow(&traces), "outcome below Slow Consistency: {o:?}");
        if !check_sc(&traces) {
            saw_non_sc = true;
        }
    }
    assert!(saw_non_sc, "expected an SC-violating outcome without fences");
}

/// Every enumerated behaviour of the *fully fenced* store-buffering
/// program satisfies PC (the paper: "If one would add a fence between
/// every operation, the model is equivalent to Processor Consistency").
#[test]
fn fully_fenced_sb_is_pc() {
    let x = LocId(0);
    let y = LocId(1);
    let p = Program::new()
        .with_init(x, 0)
        .with_init(y, 0)
        .thread(vec![Instr::Write(x, 1), Instr::Fence, Instr::Read(y, Reg(0))])
        .thread(vec![Instr::Write(y, 2), Instr::Fence, Instr::Read(x, Reg(0))]);
    let outs = outcomes_with(&p, Limits::default()).unwrap();
    for o in &outs {
        let traces = vec![
            vec![MemEvent::write(x, 1), MemEvent::read(y, o[0][0])],
            vec![MemEvent::write(y, 2), MemEvent::read(x, o[1][0])],
        ];
        assert!(check_pc(&traces), "fenced SB behaviour outside PC: {o:?}");
    }
}

/// Unfenced message passing produces a behaviour below PC (the stale
/// read), yet still within Slow Consistency — the positioning of
/// Section IV-E.
#[test]
fn unfenced_mp_sits_between_slow_and_pc() {
    let outs = outcomes(&catalogue::mp_unfenced()).unwrap();
    let x = LocId(0);
    let flag = LocId(2);
    let mut saw_below_pc = false;
    for o in &outs {
        let traces = vec![
            vec![MemEvent::write(x, 42), MemEvent::write(flag, 1)],
            vec![MemEvent::read(flag, 1), MemEvent::read(x, o[1][0])],
        ];
        assert!(check_slow(&traces), "outcome below Slow Consistency: {o:?}");
        if !check_pc(&traces) {
            saw_below_pc = true;
        }
    }
    assert!(saw_below_pc, "the stale MP read must violate PC");
}
