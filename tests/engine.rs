//! The engine axis, verified end to end: the single-threaded
//! discrete-event core must be (a) deterministic down to the byte and
//! (b) indistinguishable from the thread-per-tile turnstile it
//! replaced.
//!
//! Both engines commit actions in the same `(virtual time, tile)` order
//! and drain in-flight NoC packets at the same commit points, so the
//! equivalence gate here is strict: not just outcome-set membership
//! (the conformance sweep's gate) but bit-identical traces, counters
//! and makespans per configuration.

use pmc::apps::workload::{SessionWorkload, Workload, WorkloadParams};
use pmc::model::conformance;
use pmc::runtime::litmus_exec::LitmusRun;
use pmc::runtime::monitor::validate;
use pmc::runtime::{BackendKind, LockKind, RunConfig};
use pmc::sim::telemetry::perfetto_json;
use pmc::sim::EngineKind;

fn litmus(
    program: &pmc::model::litmus::Program,
    backend: BackendKind,
    lock: LockKind,
    engine: EngineKind,
    telemetry: bool,
) -> LitmusRun {
    RunConfig::new(backend).lock(lock).engine(engine).telemetry(telemetry).session().litmus(program)
}

/// Same seed (there is only one: the config), same session ⇒
/// byte-identical telemetry export and trace across two discrete-event
/// runs — the determinism half of the tentpole's acceptance.
#[test]
fn des_runs_are_byte_identical() {
    let cases = ["mp_annotated", "dma_mp_put"];
    for name in cases {
        let case = conformance::cases().into_iter().find(|c| c.name == name).unwrap();
        let run = |_: usize| {
            litmus(
                &case.program,
                BackendKind::Spm,
                LockKind::Sdram,
                EngineKind::DiscreteEvent,
                true,
            )
        };
        let (a, b) = (run(0), run(1));
        assert_eq!(a.outcome, b.outcome, "{name}");
        assert_eq!(a.trace, b.trace, "{name}: traces must be byte-identical");
        assert_eq!(
            perfetto_json(&a.cfg, &a.telemetry, &a.trace),
            perfetto_json(&b.cfg, &b.telemetry, &b.trace),
            "{name}: telemetry export must be byte-identical"
        );
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report), "{name}");
    }
}

/// The differential cross-check over the whole litmus catalogue: the
/// turnstile and the event heap produce the *same* outcome, trace,
/// counters and makespan on every case, for representative
/// back-end/lock pairs. A mismatch anywhere means one engine commits
/// actions in a different order than the other — exactly the bug class
/// the threaded engine is kept alive to catch.
#[test]
fn threaded_and_des_are_bit_identical_over_the_catalogue() {
    let configs = [(BackendKind::Swcc, LockKind::Sdram), (BackendKind::Dsm, LockKind::Distributed)];
    for case in conformance::cases() {
        for (backend, lock) in configs {
            let t = litmus(&case.program, backend, lock, EngineKind::Threaded, false);
            let d = litmus(&case.program, backend, lock, EngineKind::DiscreteEvent, false);
            let label = format!("{}/{}/{lock:?}", case.name, backend.name());
            assert_eq!(t.outcome, d.outcome, "{label}: outcomes differ");
            assert_eq!(t.trace, d.trace, "{label}: traces differ");
            assert_eq!(
                format!("{:?}", t.report),
                format!("{:?}", d.report),
                "{label}: counters differ"
            );
            assert!(validate(&d.trace).is_empty(), "{label}");
        }
    }
}

/// The same equivalence at application scale: a full workload produces
/// the same checksum, makespan and per-core counters on both engines,
/// and only the discrete-event run reports scheduler statistics.
#[test]
fn workloads_are_engine_independent() {
    let run = |engine| {
        RunConfig::new(BackendKind::Swcc)
            .n_tiles(4)
            .engine(engine)
            .session()
            .workload(Workload::Raytrace, WorkloadParams::Tiny)
    };
    let t = run(EngineKind::Threaded);
    let d = run(EngineKind::DiscreteEvent);
    assert_eq!(t.checksum, d.checksum);
    assert_eq!(t.report.makespan, d.report.makespan);
    assert_eq!(format!("{:?}", t.report.per_core), format!("{:?}", d.report.per_core));
    assert!(t.engine_stats.is_none(), "turnstile runs carry no event-heap stats");
    let stats = d.engine_stats.expect("discrete-event runs report scheduler stats");
    assert!(stats.events > 0 && stats.handoffs > 0 && stats.peak_queue >= 1, "{stats:?}");
    assert!(
        stats.handoffs <= stats.events,
        "a handoff only happens when the heap schedules a task: {stats:?}"
    );
}
