//! End-to-end gates for the serving subsystem: seeded determinism,
//! engine equivalence, skew behaviour, and monitor-cleanliness across
//! the arrival distributions — the serving half of the acceptance
//! criteria, at test scale.

use pmc::apps::kvserve::{run_serve, run_serve_session, KvServe, KvServeParams};
use pmc::apps::loadgen::{self, ArrivalDist, LoadGenParams};
use pmc::runtime::{monitor, BackendKind, RunConfig};
use pmc::sim::EngineKind;

fn small_load() -> LoadGenParams {
    LoadGenParams {
        n_requests: 32,
        n_shards: 4,
        keys_per_shard: 16,
        mean_interarrival: 500,
        mean_service: 60,
        ..Default::default()
    }
}

/// Same seed ⇒ byte-identical schedule and byte-identical run report
/// (latencies, served counts, trace, checksum); a different seed moves
/// the schedule.
#[test]
fn serving_runs_are_deterministic_in_the_seed() {
    let load = small_load();
    assert_eq!(loadgen::generate(&load), loadgen::generate(&load));
    let other = LoadGenParams { seed: load.seed + 1, ..load };
    assert_ne!(loadgen::generate(&load), loadgen::generate(&other));

    let params = KvServeParams { load, mailbox_depth: 8, migrate_at: None };
    let a = run_serve(BackendKind::Swcc, &params);
    let b = run_serve(BackendKind::Swcc, &params);
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.served, b.served);
    assert_eq!(a.trace, b.trace, "repeat runs must be byte-identical");
    assert_eq!(a.checksum, b.checksum);
    let c = run_serve(BackendKind::Swcc, &KvServeParams { load: other, ..params });
    assert_ne!(a.checksum, c.checksum, "a different seed must move the run");
}

/// The threaded turnstile and the discrete-event engine serve the same
/// schedule identically: per-request latencies, served counts, traces
/// and checksums all match, on every back-end.
#[test]
fn engines_agree_on_every_backend() {
    let params = KvServeParams { load: small_load(), mailbox_depth: 8, migrate_at: None };
    for backend in BackendKind::ALL {
        let run = |engine| {
            let session = RunConfig::new(backend)
                .n_tiles(KvServe::tiles_needed(&params))
                .trace(true)
                .engine(engine)
                .session();
            run_serve_session(&session, &params)
        };
        let t = run(EngineKind::Threaded);
        let d = run(EngineKind::DiscreteEvent);
        assert_eq!(t.latencies, d.latencies, "{backend:?}: latencies differ across engines");
        assert_eq!(t.served, d.served, "{backend:?}");
        assert_eq!(t.trace, d.trace, "{backend:?}: traces differ across engines");
        assert_eq!(t.checksum, d.checksum, "{backend:?}");
    }
}

/// The Zipf knob reaches the served-count level: under heavy skew the
/// hot shard serves the most requests; with the knob flat, no shard
/// starves.
#[test]
fn zipf_skew_shows_up_in_served_counts() {
    let skewed = LoadGenParams { zipf_s: 2.0, ..small_load() };
    let params = KvServeParams { load: skewed, mailbox_depth: 8, migrate_at: None };
    let r = run_serve(BackendKind::Uncached, &params);
    let hot = r.served[0];
    assert_eq!(r.served.iter().sum::<u32>(), skewed.n_requests);
    assert!(
        r.served.iter().skip(1).all(|&s| s <= hot),
        "hot shard must serve the most: {:?}",
        r.served
    );
    // The generator's own jobs say exactly how many each shard gets.
    let per_shard: Vec<u32> = (0..skewed.n_shards)
        .map(|s| r.jobs.iter().filter(|j| j.shard == s).count() as u32)
        .collect();
    assert_eq!(r.served, per_shard);
}

/// Every arrival distribution drives a clean run: all requests served,
/// all latencies measured, and the trace passes the consistency
/// monitor.
#[test]
fn all_arrival_distributions_serve_clean() {
    for arrival in ArrivalDist::ALL {
        let load = LoadGenParams { arrival, ..small_load() };
        let params = KvServeParams { load, mailbox_depth: 8, migrate_at: None };
        let r = run_serve(BackendKind::Spm, &params);
        assert_eq!(r.served.iter().sum::<u32>(), load.n_requests, "{arrival:?}");
        assert!(r.latencies.iter().all(|&l| l > 0), "{arrival:?}");
        let v = monitor::validate(&r.trace);
        assert!(v.is_empty(), "{arrival:?}: {v:?}");
    }
}

/// The request histogram rides the telemetry span path: a
/// telemetry-enabled session histograms exactly one `request` span per
/// request, and the histogram's extremes bracket the exact readback.
#[test]
fn request_latencies_reach_the_metrics_registry() {
    let params = KvServeParams { load: small_load(), mailbox_depth: 8, migrate_at: None };
    let session = RunConfig::new(BackendKind::Swcc)
        .n_tiles(KvServe::tiles_needed(&params))
        .telemetry(true)
        .trace(true)
        .session();
    let r = run_serve_session(&session, &params);
    assert_eq!(r.metrics.request.count(), params.load.n_requests as u64);
    let max_exact = *r.latencies.iter().max().unwrap();
    assert_eq!(r.metrics.request.max(), max_exact, "histogram max is the exact latency");
}
