//! Differential conformance harness: the entire litmus catalogue swept
//! over every simulated back-end, both lock kinds and both interconnect
//! topologies, validated two ways against the PMC model:
//!
//! 1. **outcome membership** — each traced simulation's final registers
//!    must fall inside the model enumerator's allowed-outcome set for the
//!    canonically lowered program ([`conformance::lower`]: the runtime
//!    only writes under `entry_x`, so bare model writes become momentary
//!    acquire/write/release windows);
//! 2. **trace validity** — every run's annotation trace must satisfy
//!    [`monitor::validate`] (mutual exclusion, freshness under lock,
//!    slow-read monotonicity) with zero violations.
//!
//! The **topology axis** is the portability gate for the interconnect:
//! the model's outcome sets know nothing about rings, meshes or tori,
//! so a mesh or torus run escaping the set (or dirtying a trace) would
//! mean the consistency machinery silently depends on ring routing. Set
//! `PMC_TOPOLOGY=ring`, `PMC_TOPOLOGY=mesh` or `PMC_TOPOLOGY=torus` to
//! restrict the sweep to one topology (the CI matrix does); by default
//! all three are swept.
//!
//! The **memory-controller axis** gates the scale-out memory system:
//! set `PMC_MEM_CONTROLLERS=<k>` (k ≥ 2) to rerun the whole sweep with
//! the SDRAM offset space interleaved over k controllers — outcome sets
//! and traces must not notice where the bytes physically live. Unset
//! sweeps the single-controller default.
//!
//! The **engine axis** is the same gate for the execution core: the
//! discrete-event engine and the thread-per-tile turnstile must drive
//! every case to a model-allowed outcome with a clean trace. Set
//! `PMC_ENGINE=threaded` or `PMC_ENGINE=des` to restrict the sweep (the
//! CI matrix does); by default both are swept.
//!
//! Golden snapshots of the model-level outcome sets (the paper's
//! Figs. 1–6 ground truth) are pinned in [`conformance::cases`] and
//! re-verified here, so any model drift fails the same suite that checks
//! the back-ends.

use std::collections::BTreeSet;

use pmc::model::conformance::{self, render_outcomes, sweep_limits, verify_golden};
use pmc::model::interleave::{outcomes_with, Outcome};
use pmc::runtime::monitor::validate;
use pmc::runtime::{BackendKind, LockKind, RunConfig, System};
use pmc::sim::telemetry::perfetto_json;
use pmc::sim::{EngineKind, SocConfig, Topology};

const LOCK_KINDS: [LockKind; 2] = [LockKind::Sdram, LockKind::Distributed];

/// Mesh shape for a litmus run: two columns, at least two rows, so every
/// XY route can exercise both dimensions and surplus tiles idle.
fn mesh_for(threads: usize) -> Topology {
    Topology::Mesh { cols: 2, rows: threads.div_ceil(2).max(2) }
}

/// Torus shape for a litmus run: same grid as [`mesh_for`], with the
/// wraparound links live.
fn torus_for(threads: usize) -> Topology {
    Topology::Torus { cols: 2, rows: threads.div_ceil(2).max(2) }
}

/// The topologies to sweep, honouring the `PMC_TOPOLOGY` filter
/// (`ring` / `mesh` / `torus`; unset or anything else sweeps all three).
fn topologies_for(threads: usize) -> Vec<(&'static str, Topology)> {
    let filter = std::env::var("PMC_TOPOLOGY").unwrap_or_default();
    [("ring", Topology::Ring), ("mesh", mesh_for(threads)), ("torus", torus_for(threads))]
        .into_iter()
        .filter(|(name, _)| {
            !matches!(filter.as_str(), "ring" | "mesh" | "torus") || filter == *name
        })
        .collect()
}

/// The memory-controller list to sweep with, honouring
/// `PMC_MEM_CONTROLLERS=<k>`: tiles `0..k` (clamped to the smallest
/// machine the case can run on, so they are in range on every topology)
/// with the SDRAM offset space interleaved across them. Unset, anything
/// unparsable, or `k < 2` keeps the single-controller default.
fn controllers_for(threads: usize) -> (String, Vec<usize>) {
    match std::env::var("PMC_MEM_CONTROLLERS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(k) if k >= 2 => {
            let k = k.min(threads.max(1));
            (format!("{k}ctrl"), (0..k).collect())
        }
        _ => ("1ctrl".to_string(), Vec::new()),
    }
}

/// The engines to sweep, honouring the `PMC_ENGINE` filter
/// (`threaded` / `des`; unset or anything else sweeps both).
fn engines() -> Vec<(&'static str, EngineKind)> {
    let filter = std::env::var("PMC_ENGINE").unwrap_or_default();
    [("threaded", EngineKind::Threaded), ("des", EngineKind::DiscreteEvent)]
        .into_iter()
        .filter(|(name, _)| !matches!(filter.as_str(), "threaded" | "des") || filter == *name)
        .collect()
}

/// Sweep one case over 4 back-ends × 2 lock kinds × the topology axis ×
/// the engine axis, returning every divergence as a message instead of
/// panicking (the sweep runs cases on worker threads and wants all
/// failures, not the first).
fn sweep_case(case: &conformance::Case) -> Vec<String> {
    let mut errors = Vec::new();
    let lowered = conformance::lower(&case.program);
    let allowed: BTreeSet<Outcome> = match outcomes_with(&lowered, sweep_limits()) {
        Ok(outs) => outs,
        Err(e) => return vec![format!("{}: {e}", case.name)],
    };
    if allowed.is_empty() {
        return vec![format!("{}: empty model outcome set", case.name)];
    }
    let threads = case.program.threads.len().max(1);
    let topologies = topologies_for(threads);
    let engines = engines();
    let (ctrl_name, ctrls) = controllers_for(threads);
    for backend in BackendKind::ALL {
        for lock in LOCK_KINDS {
            for &(topo_name, topo) in &topologies {
                for &(engine_name, engine) in &engines {
                    let session = RunConfig::new(backend)
                        .lock(lock)
                        .topology(topo)
                        .engine(engine)
                        .mem_controllers(ctrls.clone())
                        .session();
                    let run = session.litmus(&case.program);
                    let mut config_errors = Vec::new();
                    if !allowed.contains(&run.outcome) {
                        config_errors.push(format!(
                            "{}/{}/{lock:?}/{topo_name}/{engine_name}/{ctrl_name}: simulator \
                             outcome {:?} outside the model's allowed set:\n{}",
                            case.name,
                            backend.name(),
                            run.outcome,
                            render_outcomes(&allowed),
                        ));
                    }
                    let violations = validate(&run.trace);
                    if !violations.is_empty() {
                        config_errors.push(format!(
                            "{}/{}/{lock:?}/{topo_name}/{engine_name}/{ctrl_name}: monitor \
                             violations: {violations:#?}",
                            case.name,
                            backend.name(),
                        ));
                    }
                    if !config_errors.is_empty() {
                        // Re-run the exact failing configuration with
                        // telemetry and drop a Perfetto timeline next to
                        // the failure report, so CI uploads an openable
                        // trace.
                        let telem = RunConfig::new(backend)
                            .lock(lock)
                            .topology(topo)
                            .engine(engine)
                            .mem_controllers(ctrls.clone())
                            .telemetry(true)
                            .session()
                            .litmus(&case.program);
                        let path = format!(
                            "target/conformance-{}-{}-{lock:?}-{topo_name}-{engine_name}\
                             -{ctrl_name}.trace.json",
                            case.name,
                            backend.name(),
                        );
                        let json = perfetto_json(&telem.cfg, &telem.telemetry, &telem.trace);
                        if std::fs::write(&path, json).is_ok() {
                            for e in &mut config_errors {
                                e.push_str(&format!("\n(trace artifact: {path})"));
                            }
                        }
                        errors.extend(config_errors);
                    }
                }
            }
        }
    }
    errors
}

/// The tentpole sweep: catalogue × 4 back-ends × 2 lock kinds × 3
/// topologies × 2 engines (× the controller axis). Every simulator
/// outcome inside the model set, every trace clean — on the mesh and
/// torus exactly as on the ring, under the event heap exactly as under
/// the turnstile, with interleaved controllers exactly as with one.
/// Cases are
/// independent (each run builds its own `System`), so they are spread
/// over worker threads and all divergences are reported together.
#[test]
fn catalogue_sweep_outcomes_within_model_and_traces_clean() {
    let cases = conformance::cases();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let errors: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(cases.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(case) = cases.get(i) else { return };
                let case_errors = sweep_case(case);
                if !case_errors.is_empty() {
                    errors.lock().unwrap().extend(case_errors);
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap();
    assert!(errors.is_empty(), "{} divergence(s):\n{}", errors.len(), errors.join("\n"));
}

/// The golden outcome-set snapshots (paper Figs. 1–6 programs) match the
/// enumerator bit-for-bit.
#[test]
fn golden_outcome_sets_are_pinned() {
    for case in conformance::cases() {
        if let Err(msg) = verify_golden(&case) {
            panic!("{msg}");
        }
    }
}

/// Repeated sweeps of a racy case accumulate only model-allowed outcomes:
/// perturbing the poll cadence via different lock kinds, back-ends and
/// topologies exercises different interleavings, and none may escape
/// the set.
#[test]
fn unfenced_mp_never_escapes_model_set() {
    let case = conformance::cases().into_iter().find(|c| c.name == "mp_unfenced").unwrap();
    let allowed = outcomes_with(&conformance::lower(&case.program), sweep_limits()).unwrap();
    let threads = case.program.threads.len().max(1);
    let (_, ctrls) = controllers_for(threads);
    let mut observed: BTreeSet<Outcome> = BTreeSet::new();
    for backend in BackendKind::ALL {
        for lock in LOCK_KINDS {
            for (topo_name, topo) in topologies_for(threads) {
                for (engine_name, engine) in engines() {
                    let run = RunConfig::new(backend)
                        .lock(lock)
                        .topology(topo)
                        .engine(engine)
                        .mem_controllers(ctrls.clone())
                        .session()
                        .litmus(&case.program);
                    assert!(
                        allowed.contains(&run.outcome),
                        "{}/{lock:?}/{topo_name}/{engine_name}",
                        backend.name()
                    );
                    observed.insert(run.outcome);
                }
            }
        }
    }
    // Every observation is one of the two model outcomes (42 always; 0
    // additionally on back-ends where the flag outruns X).
    assert!(!observed.is_empty());
    for o in &observed {
        assert!(allowed.contains(o));
    }
}

/// The harness is falsifiable: a deliberately corrupted trace (exclusive
/// scopes overlapping) is flagged, so "zero violations" above is a real
/// guarantee, not a vacuous pass.
#[test]
fn monitor_still_catches_planted_violations() {
    let mut sys = System::new(
        {
            let mut cfg = SocConfig::small(2);
            cfg.trace = true;
            cfg
        },
        BackendKind::Uncached,
        LockKind::Sdram,
    );
    let x = sys.alloc::<u32>("x");
    sys.run(vec![
        Box::new(move |ctx| {
            ctx.scope_x(x).write(1);
        }),
        Box::new(move |_ctx| {}),
    ]);
    let mut trace = sys.soc().take_trace();
    assert!(validate(&trace).is_empty());
    // Plant a second, overlapping ENTRY_X from the other tile at time 0.
    let mut forged = trace[0];
    forged.tile = 1;
    trace.insert(1, forged);
    assert!(!validate(&trace).is_empty(), "forged overlap must be flagged");
}
